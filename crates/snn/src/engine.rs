//! Persistent batched inference engine with per-sample early exit.
//!
//! [`evaluate`](crate::evaluate) is a one-shot API: every call clones the
//! network for each worker and spins a fresh thread scope. That is the right
//! shape for a single sweep, but the benchmark drivers evaluate the *same*
//! converted network dozens of times (per strategy, per checkpoint grid, per
//! ablation), re-paying the clone and spawn cost each time. [`Engine`] keeps
//! a long-lived worker pool whose threads cache a per-worker network replica
//! keyed by an epoch counter, so repeated sweeps of one network clone it once
//! per worker and then only `reset()` between presentations.
//!
//! The engine also adds **per-sample early exit** ([`ExitPolicy::Adaptive`]):
//! rate-coded evidence accumulates monotonically, so once a sample's top-1
//! readout margin has stayed on one class for a while, more timesteps almost
//! never change the prediction — they only cost synaptic operations. A sample
//! *retires* when its margin has been at least `min_margin` with an unchanged
//! argmax for `patience` consecutive steps (and at least `min_steps` steps
//! have run). Retired samples are compacted out of the active batch —
//! [`SpikingNetwork::retain_rows`] drops their membrane rows from every bank —
//! so the surviving samples simulate in a genuinely smaller batch and the
//! saved work is real wall-clock, not bookkeeping. Because every kernel
//! computes batch items independently, compaction leaves the survivors'
//! trajectories bit-for-bit unchanged, and [`ExitPolicy::Off`] (the
//! `patience = ∞` limit) reproduces the fixed-T sweep bitwise.
//!
//! Results come back as an [`EngineResult`]: the usual checkpoint sweep plus
//! per-sample exit steps, predictions at exit, the aggregated margin
//! trajectory ([`MarginTrace`]), and the total timesteps saved.

use crate::network::SpikingNetwork;
use crate::sim::{InputCoding, Readout, SimConfig, SweepResult};
use crate::trace::MarginTrace;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use tcl_tensor::{ops, par, simd, Result, SeededRng, Shape, Tensor, TensorError};

/// When a sample may stop simulating before the final checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ExitPolicy {
    /// No early exit: every sample runs to the largest checkpoint. This is
    /// the `patience = ∞` limit and reproduces [`crate::evaluate`] bitwise.
    #[default]
    Off,
    /// Retire a sample once its readout margin has been *stable*: the top-1
    /// class unchanged and the top-1/top-2 score gap at least `min_margin`
    /// for `patience` consecutive timesteps.
    Adaptive {
        /// Consecutive stable steps required before a sample retires.
        /// Larger values trade saved timesteps for fewer anytime violations.
        patience: usize,
        /// Minimum top-1 minus top-2 readout score gap for a step to count
        /// as stable (in readout-score units: spikes for
        /// [`Readout::SpikeCount`], integrated current for
        /// [`Readout::Membrane`]).
        min_margin: f32,
        /// No sample retires before this many timesteps, regardless of
        /// margin — guards against confident-looking transients while the
        /// spike wavefront is still propagating.
        min_steps: usize,
    },
}

impl ExitPolicy {
    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns an error for `patience == 0` or a negative/NaN `min_margin`.
    pub fn validate(&self) -> Result<()> {
        if let ExitPolicy::Adaptive {
            patience,
            min_margin,
            ..
        } = self
        {
            if *patience == 0 {
                return Err(TensorError::InvalidArgument {
                    detail: "exit policy: patience must be at least 1".into(),
                });
            }
            if !min_margin.is_finite() || *min_margin < 0.0 {
                return Err(TensorError::InvalidArgument {
                    detail: format!("exit policy: min_margin {min_margin} must be finite and ≥ 0"),
                });
            }
        }
        Ok(())
    }

    /// Whether this policy can retire samples early.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, ExitPolicy::Adaptive { .. })
    }
}

/// Results of an engine evaluation: the checkpoint sweep plus per-sample
/// early-exit diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineResult {
    /// The latency-checkpoint sweep. Under [`ExitPolicy::Adaptive`],
    /// checkpoint scores for retired samples are frozen at their exit step —
    /// the anytime-prediction view of the sweep.
    pub sweep: SweepResult,
    /// Per-sample predicted class, in input order: the class at the exit
    /// step for retired samples, at the final checkpoint otherwise.
    pub predictions: Vec<usize>,
    /// Per-sample timestep at which the prediction was read out (the exit
    /// step for retired samples, `max_t` otherwise).
    pub exit_steps: Vec<usize>,
    /// Per-sample flag: did this sample retire before the final checkpoint?
    pub exited: Vec<bool>,
    /// Accuracy of [`EngineResult::predictions`] — the anytime accuracy the
    /// early-exit run actually delivers.
    pub adaptive_accuracy: f32,
    /// Mean of [`EngineResult::exit_steps`].
    pub mean_exit_step: f32,
    /// Total timesteps *not* simulated thanks to early exit:
    /// `Σ (max_t − exit_step)`. 0 under [`ExitPolicy::Off`].
    pub saved_steps: u64,
    /// Aggregated per-step margin trajectory (empty under
    /// [`ExitPolicy::Off`], which never computes margins).
    pub margins: MarginTrace,
}

/// Per-batch simulation results, folded in batch order.
struct BatchOutcome {
    /// Correct predictions at each checkpoint, in checkpoint order.
    correct: Vec<usize>,
    /// Spikes emitted during this presentation.
    spikes: u64,
    /// Neuron count of the network at full batch width (constant across
    /// batches, carried here so the fold does not need the network).
    neurons: usize,
    /// Predicted class per sample, in within-batch order.
    preds: Vec<usize>,
    /// Readout timestep per sample.
    exit_steps: Vec<usize>,
    /// Early-exit flag per sample.
    exited: Vec<bool>,
    /// Per-step margins over this batch's samples.
    margins: MarginTrace,
}

/// One queued evaluation, shared by the calling thread and the worker pool.
/// Batches are claimed through `next` (work stealing) and results land in
/// `slots` by batch index, so the fold is batch-ordered and bitwise
/// independent of which worker ran what.
struct Job {
    epoch: u64,
    net: Arc<SpikingNetwork>,
    images: Tensor,
    labels: Vec<usize>,
    config: SimConfig,
    policy: ExitPolicy,
    n: usize,
    max_t: usize,
    batch_count: usize,
    next: AtomicUsize,
    slots: Mutex<Vec<Option<Result<BatchOutcome>>>>,
    done: mpsc::Sender<()>,
    parent: Option<u64>,
    /// SIMD level resolved on the submitting thread; pool workers re-apply
    /// it so every batch of a job runs identical kernel numerics.
    level: simd::Level,
}

struct Worker {
    sender: mpsc::Sender<Arc<Job>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// A persistent batched inference engine (see the module docs).
///
/// Worker threads are spawned lazily on the first evaluation that can use
/// them and live until the engine is dropped. Each worker caches a network
/// replica keyed by an *epoch*: [`Engine::evaluate_shared`] re-uses the
/// cached replicas whenever it sees the same `Arc` as the previous call, so
/// only the first sweep of a network pays the per-worker clone.
pub struct Engine {
    threads: usize,
    workers: Vec<Worker>,
    epoch: u64,
    shared: Option<(u64, Arc<SpikingNetwork>)>,
    /// The calling thread's own replica cache (it participates in the drain
    /// loop just like a pool worker).
    local: Option<(u64, SpikingNetwork)>,
}

impl Engine {
    /// An engine sized by the process-wide parallelism budget
    /// (`TCL_THREADS`).
    pub fn new() -> Self {
        Self::with_threads(par::current().threads())
    }

    /// An engine with an explicit thread budget (including the calling
    /// thread; `1` means fully inline).
    pub fn with_threads(threads: usize) -> Self {
        Engine {
            threads: threads.max(1),
            workers: Vec::new(),
            epoch: 0,
            shared: None,
            local: None,
        }
    }

    /// The thread budget this engine was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates `net` over the checkpoint sweep in `config` under `policy`.
    ///
    /// Clones the network into the engine once per call; when evaluating the
    /// same network repeatedly, prefer [`Engine::evaluate_shared`], which
    /// recognises a repeated `Arc` and skips the re-clone.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configuration/policy, empty or
    /// mismatched data, or network shape failures. With multiple failing
    /// batches, the error of the earliest batch is returned.
    pub fn evaluate(
        &mut self,
        net: &SpikingNetwork,
        images: &Tensor,
        labels: &[usize],
        config: &SimConfig,
        policy: ExitPolicy,
    ) -> Result<EngineResult> {
        self.evaluate_shared(&Arc::new(net.clone()), images, labels, config, policy)
    }

    /// Like [`Engine::evaluate`], but takes the network behind an `Arc`:
    /// consecutive calls with the *same* `Arc` (pointer identity) keep every
    /// worker's cached replica, so only `reset()` separates the sweeps.
    ///
    /// # Errors
    ///
    /// See [`Engine::evaluate`].
    pub fn evaluate_shared(
        &mut self,
        net: &Arc<SpikingNetwork>,
        images: &Tensor,
        labels: &[usize],
        config: &SimConfig,
        policy: ExitPolicy,
    ) -> Result<EngineResult> {
        config.validate()?;
        policy.validate()?;
        let n = images.dims().first().copied().unwrap_or(0);
        if n == 0 || labels.len() != n {
            return Err(TensorError::InvalidArgument {
                detail: format!("engine: {n} images vs {} labels", labels.len()),
            });
        }
        // lint: allow(P1) SimConfig::validate above rejects empty checkpoints
        let max_t = *config.checkpoints.last().expect("validated nonempty");
        let batch_count = n.div_ceil(config.batch_size);
        let _span = tcl_telemetry::span_with("engine.evaluate", || {
            vec![
                ("samples", n as f64),
                ("max_t", max_t as f64),
                ("batches", batch_count as f64),
                ("adaptive", f64::from(u8::from(policy.is_adaptive()))),
            ]
        });
        // lint: allow(D1) wall time feeds only the gated engine.* heartbeat
        // gauges below; simulation results never depend on it
        let eval_start = std::time::Instant::now();
        let epoch = self.epoch_for(net);
        let (done_tx, done_rx) = mpsc::channel();
        let mut slots: Vec<Option<Result<BatchOutcome>>> = Vec::with_capacity(batch_count);
        slots.resize_with(batch_count, || None);
        let job = Arc::new(Job {
            epoch,
            net: net.clone(),
            images: images.clone(),
            labels: labels.to_vec(),
            config: config.clone(),
            policy,
            n,
            max_t,
            batch_count,
            next: AtomicUsize::new(0),
            slots: Mutex::new(slots),
            done: done_tx,
            parent: tcl_telemetry::current_span_id(),
            level: simd::current(),
        });
        if self.threads.min(batch_count) > 1 {
            self.ensure_workers();
            // Prune workers whose channel is gone (the thread died); the
            // unclaimed-slot sweep below re-runs anything they dropped.
            self.workers
                .retain(|w| w.sender.send(Arc::clone(&job)).is_ok());
            let sent = self.workers.len();
            // The calling thread drains alongside the pool, in a serial
            // scope like any other coarse-grained worker.
            let replica = Self::replica_for(&mut self.local, epoch, net);
            par::with_serial(|| drain(&job, replica));
            for _ in 0..sent {
                if done_rx.recv().is_err() {
                    break;
                }
            }
        } else {
            // Single-worker path runs inline and keeps kernel-level fan-out
            // available, exactly like the one-shot evaluator's serial path.
            let replica = Self::replica_for(&mut self.local, epoch, net);
            drain(&job, replica);
        }
        let mut slots = {
            // lint: allow(P1) poisoned only if a worker panicked, which is
            // already a bug; propagating the panic is the correct response
            let mut guard = job.slots.lock().expect("engine slots");
            std::mem::take(&mut *guard)
        };
        for (b, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() {
                let replica = Self::replica_for(&mut self.local, epoch, net);
                *slot = Some(run_batch(replica, &job, b));
            }
        }
        let result = fold_outcomes(config, labels, n, max_t, slots)?;
        if tcl_telemetry::metrics_enabled() {
            // Heartbeat gauges for the live exporter (`TCL_OBS_ADDR`):
            // simulation throughput, how often early exit fires, and the
            // mean number of lanes still active per timestep (compaction
            // effectiveness). Gauges keep last/min/max, so a scrape sees
            // the most recent evaluation plus the run envelope.
            let elapsed = eval_start.elapsed().as_secs_f64();
            let total_steps: u64 = result.exit_steps.iter().map(|&s| s as u64).sum();
            if elapsed > 0.0 {
                tcl_telemetry::gauge_set("engine.steps_per_sec", total_steps as f64 / elapsed);
            }
            let exits = result.exited.iter().filter(|&&e| e).count();
            tcl_telemetry::gauge_set("engine.early_exit_rate", exits as f64 / n as f64);
            tcl_telemetry::gauge_set("engine.active_lanes", total_steps as f64 / max_t as f64);
        }
        Ok(result)
    }

    /// The epoch for `net`, bumping it when the pointer differs from the
    /// previous evaluation's network.
    fn epoch_for(&mut self, net: &Arc<SpikingNetwork>) -> u64 {
        if let Some((e, cached)) = &self.shared {
            if Arc::ptr_eq(cached, net) {
                return *e;
            }
        }
        self.epoch += 1;
        self.shared = Some((self.epoch, Arc::clone(net)));
        self.epoch
    }

    /// The calling thread's replica, re-cloned only on epoch change.
    fn replica_for<'a>(
        cache: &'a mut Option<(u64, SpikingNetwork)>,
        epoch: u64,
        net: &Arc<SpikingNetwork>,
    ) -> &'a mut SpikingNetwork {
        if cache.as_ref().is_none_or(|(e, _)| *e != epoch) {
            *cache = None;
        }
        &mut cache.get_or_insert_with(|| (epoch, (**net).clone())).1
    }

    /// Spawns the pool (thread budget minus the participating caller).
    fn ensure_workers(&mut self) {
        while self.workers.len() + 1 < self.threads {
            let (tx, rx) = mpsc::channel::<Arc<Job>>();
            let handle = std::thread::Builder::new()
                .name("tcl-engine".into())
                .spawn(move || worker_loop(&rx))
                // lint: allow(P1) spawn fails only on OS thread exhaustion,
                // which has no recovery path worth plumbing through here
                .expect("spawn engine worker");
            self.workers.push(Worker {
                sender: tx,
                handle: Some(handle),
            });
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // Closing the channel ends the worker's receive loop.
            let Worker { sender, handle } = worker;
            drop(std::mem::replace(sender, mpsc::channel().0));
            if let Some(handle) = handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// A pool worker: caches one network replica across jobs, re-cloning only
/// when the job's epoch differs from the cached one.
fn worker_loop(rx: &mpsc::Receiver<Arc<Job>>) {
    let mut replica: Option<(u64, SpikingNetwork)> = None;
    for job in rx.iter() {
        // ordering: Relaxed — claim counter only hands out distinct batch
        // indices; results are published through the slots Mutex, and the
        // done channel orders job completion.
        let first = job.next.fetch_add(1, Ordering::Relaxed);
        if first < job.batch_count {
            tcl_telemetry::propagate_parent(job.parent);
            let _span = tcl_telemetry::span("engine.worker");
            let net = Engine::replica_for(&mut replica, job.epoch, &job.net);
            simd::with_level(job.level, || {
                par::with_serial(|| {
                    store(&job, first, run_batch(net, &job, first));
                    drain(&job, net);
                });
            });
            tcl_telemetry::propagate_parent(None);
        }
        let _ = job.done.send(());
    }
}

/// Claims and runs batches until the job's counter is exhausted.
fn drain(job: &Job, net: &mut SpikingNetwork) {
    loop {
        // ordering: Relaxed — same claim counter as worker_loop: indices
        // need only be distinct; the slots Mutex publishes the outcomes.
        let b = job.next.fetch_add(1, Ordering::Relaxed);
        if b >= job.batch_count {
            return;
        }
        store(job, b, run_batch(net, job, b));
    }
}

fn store(job: &Job, batch: usize, outcome: Result<BatchOutcome>) {
    // lint: allow(P1) poisoned only if another worker panicked mid-store;
    // joining that panic is the correct response
    job.slots.lock().expect("engine slots")[batch] = Some(outcome);
}

/// Gathers rows of `data` along the first dimension.
fn gather_rows(data: &Tensor, start: usize, end: usize) -> Result<Tensor> {
    let dims = data.dims();
    let n = dims[0];
    if end > n {
        return Err(TensorError::InvalidArgument {
            detail: format!("batch range {start}..{end} out of bounds for {n} rows"),
        });
    }
    let row = data.len() / n.max(1);
    let mut out_dims = dims.to_vec();
    out_dims[0] = end - start;
    Tensor::from_vec(
        Shape::new(out_dims),
        data.data()[start * row..end * row].to_vec(),
    )
}

/// Gathers arbitrary rows (`lanes`) of `data` along the first dimension.
///
/// The copy itself runs through the SIMD `gather_rows` kernel (a straight
/// bit copy at every dispatch level); bounds are validated here first so
/// the engine keeps returning `Err` instead of panicking on a bad lane.
fn gather_lanes(data: &Tensor, lanes: &[usize]) -> Result<Tensor> {
    let dims = data.dims();
    let n = dims[0];
    if let Some(&bad) = lanes.iter().find(|&&lane| lane >= n) {
        return Err(TensorError::InvalidArgument {
            detail: format!("lane {bad} out of bounds for {n} rows"),
        });
    }
    let row = data.len() / n.max(1);
    let mut out = vec![0.0f32; lanes.len() * row];
    simd::gather_rows(simd::current(), data.data(), row, lanes, &mut out);
    let mut out_dims = dims.to_vec();
    out_dims[0] = lanes.len();
    Tensor::from_vec(Shape::new(out_dims), out)
}

/// Top-1 index and top-1 minus top-2 gap of a score row, with the same tie
/// rule as [`ops::argmax_rows`] (strict `>`, first index wins). A one-class
/// row has an infinite margin (there is no runner-up to overtake).
/// Shared with the lane engine so both early-exit paths retire on the
/// exact same readout decision.
pub(crate) fn top2(row: &[f32]) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_v = row[0];
    let mut second = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > best_v {
            second = best_v;
            best_v = v;
            best = i;
        } else if v > second {
            second = v;
        }
    }
    if row.len() < 2 {
        (best, f32::INFINITY)
    } else {
        (best, best_v - second)
    }
}

fn run_batch(net: &mut SpikingNetwork, job: &Job, batch_index: usize) -> Result<BatchOutcome> {
    let start = batch_index * job.config.batch_size;
    let end = (start + job.config.batch_size).min(job.n);
    match job.policy {
        ExitPolicy::Off => run_batch_fixed(
            net,
            &job.images,
            &job.labels,
            &job.config,
            start,
            end,
            batch_index as u64,
            job.max_t,
        ),
        ExitPolicy::Adaptive {
            patience,
            min_margin,
            min_steps,
        } => run_batch_adaptive(
            net,
            &job.images,
            &job.labels,
            &job.config,
            start,
            end,
            batch_index as u64,
            job.max_t,
            patience,
            min_margin,
            min_steps,
        ),
    }
}

/// Derives the per-batch Poisson stream (independent of execution order).
fn batch_rng(input_coding: InputCoding, batch_index: u64) -> Option<SeededRng> {
    match input_coding {
        InputCoding::Analog => None,
        InputCoding::Poisson { seed } => {
            Some(SeededRng::new(seed ^ batch_index.wrapping_mul(0x9E37_79B9)))
        }
    }
}

/// Draws one step of signed Bernoulli impulses for the whole batch tensor:
/// expectation equals the clamped analog value, so rate coding is unbiased
/// for |v| ≤ 1 (standardized pixels mostly are).
fn poisson_step(x: &Tensor, rng: &mut SeededRng) -> Tensor {
    x.map(|v| {
        let p = v.abs().min(1.0);
        if rng.uniform(0.0, 1.0) < p {
            v.signum()
        } else {
            0.0
        }
    })
}

/// Readout scores for the current spike counts (and membrane state).
fn readout_scores(net: &SpikingNetwork, counts: &Tensor, readout: Readout) -> Result<Tensor> {
    match readout {
        Readout::SpikeCount => Ok(counts.clone()),
        Readout::Membrane => {
            let thr = net.output_threshold().unwrap_or(1.0);
            let mut s = counts.scale(thr);
            if let Some(v) = net.output_potential() {
                s.add_assign(v)?;
            }
            Ok(s)
        }
    }
}

/// Presents one mini-batch for `max_t` timesteps on a fresh (reset) network.
/// This is the fixed-T reference path: it must stay operation-for-operation
/// identical to the pre-engine serial evaluator, because the equivalence
/// suite pins [`ExitPolicy::Off`] results to it bitwise.
#[allow(clippy::too_many_arguments)] // engine worker body; args are the batch slice
fn run_batch_fixed(
    net: &mut SpikingNetwork,
    images: &Tensor,
    labels: &[usize],
    config: &SimConfig,
    start: usize,
    end: usize,
    batch_index: u64,
    max_t: usize,
) -> Result<BatchOutcome> {
    let x = gather_rows(images, start, end)?;
    // The Poisson stream is seeded from the batch index, not from a shared
    // RNG, so batches can run in any order (or concurrently) and still draw
    // the exact impulses the serial sweep would.
    let mut input_rng = batch_rng(config.input_coding, batch_index);
    net.reset();
    let mut correct = vec![0usize; config.checkpoints.len()];
    let mut counts: Option<Tensor> = None;
    let mut checkpoint_idx = 0usize;
    let mut final_preds: Vec<usize> = Vec::new();
    for t in 1..=max_t {
        let stimulus = match &mut input_rng {
            None => x.clone(),
            Some(rng) => poisson_step(&x, rng),
        };
        let spikes = net.step(&stimulus)?;
        match &mut counts {
            Some(c) => c.add_assign(&spikes)?,
            None => counts = Some(spikes),
        }
        if checkpoint_idx < config.checkpoints.len() && t == config.checkpoints[checkpoint_idx] {
            // lint: allow(P1) counts is set at t=1 and checkpoints are
            // validated to start at t >= 1
            let counts = counts.as_ref().expect("set on first step");
            let scores = readout_scores(net, counts, config.readout)?;
            let preds = ops::argmax_rows(&scores)?;
            correct[checkpoint_idx] += preds
                .iter()
                .zip(&labels[start..end])
                .filter(|(p, l)| p == l)
                .count();
            checkpoint_idx += 1;
            if checkpoint_idx == config.checkpoints.len() {
                final_preds = preds;
            }
        }
    }
    Ok(BatchOutcome {
        correct,
        spikes: net.total_spikes(),
        neurons: net.neurons_per_node().iter().sum(),
        preds: final_preds,
        exit_steps: vec![max_t; end - start],
        exited: vec![false; end - start],
        margins: MarginTrace::default(),
    })
}

/// The early-exit path: like [`run_batch_fixed`] but each step computes the
/// per-sample readout margin, retires samples whose margin has been stable
/// for `patience` steps, and compacts the batch so retired lanes stop
/// costing simulation work. Checkpoint scores for retired lanes are frozen
/// at their exit step.
#[allow(clippy::too_many_arguments)] // engine worker body; args are the batch slice
fn run_batch_adaptive(
    net: &mut SpikingNetwork,
    images: &Tensor,
    labels: &[usize],
    config: &SimConfig,
    start: usize,
    end: usize,
    batch_index: u64,
    max_t: usize,
    patience: usize,
    min_margin: f32,
    min_steps: usize,
) -> Result<BatchOutcome> {
    let b = end - start;
    let x = gather_rows(images, start, end)?;
    let mut input_rng = batch_rng(config.input_coding, batch_index);
    net.reset();
    let mut correct = vec![0usize; config.checkpoints.len()];
    let mut checkpoint_idx = 0usize;
    // `active[p]` is the original lane of compacted row `p`.
    let mut active: Vec<usize> = (0..b).collect();
    let mut x_active = x.clone();
    let mut counts: Option<Tensor> = None;
    let mut frozen: Vec<Option<Vec<f32>>> = vec![None; b];
    let mut last_top = vec![0usize; b];
    let mut stable = vec![0usize; b];
    let mut exit_steps = vec![max_t; b];
    let mut exited = vec![false; b];
    let mut margins = MarginTrace::new(max_t);
    let mut neurons = 0usize;
    let mut classes = 0usize;
    for t in 1..=max_t {
        // Poisson impulses are drawn for the FULL batch and then gathered,
        // so each sample consumes the same RNG stream it would without
        // compaction — retirement of a neighbour never shifts its draws.
        let stimulus = match &mut input_rng {
            None => x_active.clone(),
            Some(rng) => {
                let full = poisson_step(&x, rng);
                gather_lanes(&full, &active)?
            }
        };
        let spikes = net.step(&stimulus)?;
        match &mut counts {
            Some(c) => c.add_assign(&spikes)?,
            None => counts = Some(spikes),
        }
        if t == 1 {
            neurons = net.neurons_per_node().iter().sum();
        }
        let scores = readout_scores(
            net,
            // lint: allow(P1) counts is set by the match directly above on
            // every iteration, including the first
            counts.as_ref().expect("set on first step"),
            config.readout,
        )?;
        let (_, score_classes) = scores.shape().as_matrix()?;
        classes = score_classes;
        // Margin tracking and retirement decisions, per active lane.
        let mut retiring = false;
        for (p, &lane) in active.iter().enumerate() {
            let row = &scores.data()[p * classes..(p + 1) * classes];
            let (top, margin) = top2(row);
            margins.record(t - 1, margin);
            if margin >= min_margin && top == last_top[lane] && stable[lane] > 0 {
                stable[lane] += 1;
            } else if margin >= min_margin {
                stable[lane] = 1;
            } else {
                stable[lane] = 0;
            }
            last_top[lane] = top;
            if t >= min_steps && t < max_t && stable[lane] >= patience {
                frozen[lane] = Some(row.to_vec());
                exit_steps[lane] = t;
                exited[lane] = true;
                retiring = true;
            }
        }
        // Checkpoint accounting over the full batch: frozen rows keep their
        // exit-step scores (just-retired lanes freeze this step's scores, so
        // the order of retirement vs checkpointing does not matter).
        if checkpoint_idx < config.checkpoints.len() && t == config.checkpoints[checkpoint_idx] {
            let mut full_scores = vec![0f32; b * classes];
            for (p, &lane) in active.iter().enumerate() {
                full_scores[lane * classes..(lane + 1) * classes]
                    .copy_from_slice(&scores.data()[p * classes..(p + 1) * classes]);
            }
            for (lane, f) in frozen.iter().enumerate() {
                if let Some(row) = f {
                    full_scores[lane * classes..(lane + 1) * classes].copy_from_slice(row);
                }
            }
            let preds = ops::argmax_rows(&Tensor::from_vec([b, classes], full_scores)?)?;
            correct[checkpoint_idx] += preds
                .iter()
                .zip(&labels[start..end])
                .filter(|(p, l)| p == l)
                .count();
            checkpoint_idx += 1;
        }
        // Compact retired lanes out of the network, the counts, and the
        // analog stimulus. Survivors keep their exact membrane rows.
        if retiring {
            let keep: Vec<usize> = (0..active.len()).filter(|&p| !exited[active[p]]).collect();
            net.retain_rows(&keep)?;
            // lint: allow(P1) counts was set earlier this same iteration
            counts = Some(gather_lanes(counts.as_ref().expect("set above"), &keep)?);
            x_active = gather_lanes(&x_active, &keep)?;
            active = keep.iter().map(|&p| active[p]).collect();
            if active.is_empty() {
                break;
            }
        }
    }
    // Remaining checkpoints after every lane retired: scores are all frozen
    // and no longer change.
    while checkpoint_idx < config.checkpoints.len() {
        let mut full_scores = vec![0f32; b * classes];
        for (lane, f) in frozen.iter().enumerate() {
            if let Some(row) = f {
                full_scores[lane * classes..(lane + 1) * classes].copy_from_slice(row);
            }
        }
        let preds = ops::argmax_rows(&Tensor::from_vec([b, classes], full_scores)?)?;
        correct[checkpoint_idx] += preds
            .iter()
            .zip(&labels[start..end])
            .filter(|(p, l)| p == l)
            .count();
        checkpoint_idx += 1;
    }
    // Predictions: `last_top` already holds the top-1 at the last step each
    // lane was scored (its exit step, or `max_t` if it never retired), with
    // the same tie rule as `argmax_rows`.
    Ok(BatchOutcome {
        correct,
        spikes: net.total_spikes(),
        neurons,
        preds: last_top,
        exit_steps,
        exited,
        margins,
    })
}

/// Folds per-batch outcomes (in batch order) into an [`EngineResult`].
fn fold_outcomes(
    config: &SimConfig,
    labels: &[usize],
    n: usize,
    max_t: usize,
    slots: Vec<Option<Result<BatchOutcome>>>,
) -> Result<EngineResult> {
    let mut correct = vec![0usize; config.checkpoints.len()];
    let mut total_spikes = 0u64;
    let mut rate_accum = 0.0f64;
    let mut rate_batches = 0usize;
    let mut predictions = Vec::with_capacity(n);
    let mut exit_steps = Vec::with_capacity(n);
    let mut exited = Vec::with_capacity(n);
    let mut margins = MarginTrace::default();
    for slot in slots {
        // lint: allow(P1) evaluate's unclaimed-slot sweep re-runs every
        // batch a dead worker dropped before folding
        let outcome = slot.expect("engine: every batch slot filled")?;
        for (c, b) in correct.iter_mut().zip(&outcome.correct) {
            *c += b;
        }
        total_spikes += outcome.spikes;
        if outcome.neurons > 0 {
            let rate = outcome.spikes as f64 / (outcome.neurons as f64 * max_t as f64);
            rate_accum += rate;
            rate_batches += 1;
            // Per-batch mean firing rate distribution (rates live in [0, 1]).
            if tcl_telemetry::metrics_enabled() {
                tcl_telemetry::hist_record("snn.firing_rate", rate, 1.0, 20);
            }
        }
        predictions.extend(outcome.preds);
        exit_steps.extend(outcome.exit_steps);
        exited.extend(outcome.exited);
        margins.merge(&outcome.margins);
    }
    let accuracies = config
        .checkpoints
        .iter()
        .zip(&correct)
        .map(|(&t, &c)| (t, c as f32 / n as f32))
        .collect();
    let sweep = SweepResult {
        accuracies,
        mean_firing_rate: if rate_batches > 0 {
            (rate_accum / rate_batches as f64) as f32
        } else {
            0.0
        },
        total_spikes,
        samples: n,
    };
    let adaptive_correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    let saved_steps: u64 = exit_steps.iter().map(|&s| (max_t - s) as u64).sum();
    let mean_exit_step = exit_steps.iter().sum::<usize>() as f32 / n as f32;
    if tcl_telemetry::metrics_enabled() {
        tcl_telemetry::counter_add("engine.samples", n as u64);
        tcl_telemetry::counter_add(
            "engine.early_exits",
            exited.iter().filter(|&&e| e).count() as u64,
        );
        tcl_telemetry::counter_add("engine.saved_steps", saved_steps);
    }
    Ok(EngineResult {
        sweep,
        predictions,
        exit_steps,
        exited,
        adaptive_accuracy: adaptive_correct as f32 / n as f32,
        mean_exit_step,
        saved_steps,
        margins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron::{IfNeurons, ResetMode};
    use crate::node::{SpikingLayer, SpikingNode};
    use crate::synop::SynapticOp;

    fn copy_net() -> SpikingNetwork {
        SpikingNetwork::new(vec![SpikingNode::Spiking(SpikingLayer::new(
            SynapticOp::Linear {
                weight: Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
                bias: None,
            },
            IfNeurons::new(1.0, ResetMode::Subtract),
        ))])
    }

    fn toy_data() -> (Tensor, Vec<usize>) {
        let images =
            Tensor::from_vec([4, 2], vec![0.9, 0.1, 0.8, 0.3, 0.2, 0.7, 0.05, 0.6]).unwrap();
        (images, vec![0, 0, 1, 1])
    }

    #[test]
    fn off_policy_matches_the_one_shot_evaluator() {
        let net = copy_net();
        let (x, y) = toy_data();
        let cfg = SimConfig::new(vec![2, 30], 3, Readout::SpikeCount).unwrap();
        let reference = crate::evaluate(&net, &x, &y, &cfg).unwrap();
        for threads in [1, 4] {
            let mut engine = Engine::with_threads(threads);
            let result = engine
                .evaluate(&net, &x, &y, &cfg, ExitPolicy::Off)
                .unwrap();
            assert_eq!(result.sweep.accuracies, reference.accuracies);
            assert_eq!(result.sweep.total_spikes, reference.total_spikes);
            assert_eq!(result.exit_steps, vec![30; 4]);
            assert_eq!(result.exited, vec![false; 4]);
            assert_eq!(result.saved_steps, 0);
            assert_eq!(result.margins.steps(), 0);
            // Off-policy predictions are the final-checkpoint predictions.
            assert_eq!(result.adaptive_accuracy, reference.final_accuracy());
        }
    }

    #[test]
    fn adaptive_exits_early_on_confident_samples() {
        let net = copy_net();
        let (x, y) = toy_data();
        let cfg = SimConfig::new(vec![100], 4, Readout::SpikeCount).unwrap();
        let mut engine = Engine::with_threads(1);
        let policy = ExitPolicy::Adaptive {
            patience: 5,
            min_margin: 3.0,
            min_steps: 10,
        };
        let result = engine.evaluate(&net, &x, &y, &cfg, policy).unwrap();
        assert!(result.exited.iter().any(|&e| e), "{result:?}");
        assert!(result.saved_steps > 0);
        assert!(result.mean_exit_step < 100.0);
        assert_eq!(result.adaptive_accuracy, 1.0);
        // Margins were tracked while samples were active.
        assert!(result.margins.active_at(0) == 4);
        // No sample exited before min_steps.
        for (&step, &e) in result.exit_steps.iter().zip(&result.exited) {
            if e {
                assert!((10..100).contains(&step));
            }
        }
    }

    #[test]
    fn adaptive_with_unreachable_patience_matches_fixed_sweep() {
        let net = copy_net();
        let (x, y) = toy_data();
        let cfg = SimConfig::new(vec![3, 40], 2, Readout::Membrane).unwrap();
        let mut engine = Engine::with_threads(2);
        let fixed = engine
            .evaluate(&net, &x, &y, &cfg, ExitPolicy::Off)
            .unwrap();
        let never = ExitPolicy::Adaptive {
            patience: usize::MAX,
            min_margin: 0.0,
            min_steps: 0,
        };
        let adaptive = engine.evaluate(&net, &x, &y, &cfg, never).unwrap();
        assert_eq!(adaptive.sweep.accuracies, fixed.sweep.accuracies);
        assert_eq!(adaptive.sweep.total_spikes, fixed.sweep.total_spikes);
        assert_eq!(adaptive.predictions, fixed.predictions);
        assert_eq!(adaptive.exited, vec![false; 4]);
        // Unlike Off, the adaptive path tracked margins every step.
        assert_eq!(adaptive.margins.steps(), 40);
    }

    #[test]
    fn engine_reuses_shared_networks_across_calls() {
        let net = Arc::new(copy_net());
        let (x, y) = toy_data();
        let cfg = SimConfig::new(vec![20], 2, Readout::SpikeCount).unwrap();
        let mut engine = Engine::with_threads(2);
        let a = engine
            .evaluate_shared(&net, &x, &y, &cfg, ExitPolicy::Off)
            .unwrap();
        let epoch_after_first = engine.epoch;
        let b = engine
            .evaluate_shared(&net, &x, &y, &cfg, ExitPolicy::Off)
            .unwrap();
        assert_eq!(engine.epoch, epoch_after_first, "same Arc, same epoch");
        assert_eq!(a.sweep.accuracies, b.sweep.accuracies);
        assert_eq!(a.sweep.total_spikes, b.sweep.total_spikes);
        // A different network bumps the epoch (replicas re-clone).
        let other = Arc::new(copy_net());
        engine
            .evaluate_shared(&other, &x, &y, &cfg, ExitPolicy::Off)
            .unwrap();
        assert_eq!(engine.epoch, epoch_after_first + 1);
    }

    #[test]
    fn poisson_streams_survive_compaction() {
        // Early-exit must not shift surviving samples' Poisson draws: the
        // non-exiting sample's prediction trajectory matches the fixed run.
        let net = copy_net();
        let x = Tensor::from_vec([2, 2], vec![0.9, 0.05, 0.5, 0.45]).unwrap();
        let y = vec![0, 0];
        let cfg = SimConfig::new(vec![60], 2, Readout::SpikeCount)
            .unwrap()
            .with_input_coding(InputCoding::Poisson { seed: 13 });
        let mut engine = Engine::with_threads(1);
        let fixed = engine
            .evaluate(&net, &x, &y, &cfg, ExitPolicy::Off)
            .unwrap();
        let policy = ExitPolicy::Adaptive {
            patience: 4,
            min_margin: 5.0,
            min_steps: 5,
        };
        let adaptive = engine.evaluate(&net, &x, &y, &cfg, policy).unwrap();
        // Sample 0 is overwhelmingly class 0 and exits; sample 1 is nearly
        // balanced and rides to max_t with an unshifted spike stream, so its
        // final prediction matches the fixed sweep's.
        assert_eq!(adaptive.predictions[1], fixed.predictions[1]);
    }

    #[test]
    fn invalid_policies_and_configs_are_rejected() {
        let net = copy_net();
        let (x, y) = toy_data();
        let cfg = SimConfig::new(vec![5], 2, Readout::SpikeCount).unwrap();
        let mut engine = Engine::with_threads(1);
        let bad_patience = ExitPolicy::Adaptive {
            patience: 0,
            min_margin: 1.0,
            min_steps: 0,
        };
        assert!(engine.evaluate(&net, &x, &y, &cfg, bad_patience).is_err());
        let bad_margin = ExitPolicy::Adaptive {
            patience: 1,
            min_margin: f32::NAN,
            min_steps: 0,
        };
        assert!(engine.evaluate(&net, &x, &y, &cfg, bad_margin).is_err());
        // Direct struct construction bypassing SimConfig::new gets a clear
        // error instead of a panic.
        let rogue = SimConfig {
            checkpoints: vec![],
            batch_size: 2,
            readout: Readout::SpikeCount,
            input_coding: InputCoding::Analog,
        };
        let err = engine
            .evaluate(&net, &x, &y, &rogue, ExitPolicy::Off)
            .unwrap_err();
        assert!(err.to_string().contains("checkpoint"), "{err}");
    }

    #[test]
    fn top2_uses_argmax_tie_rule() {
        assert_eq!(top2(&[1.0, 3.0, 2.0]), (1, 1.0));
        // Ties: first index wins, margin zero.
        assert_eq!(top2(&[2.0, 2.0]), (0, 0.0));
        assert_eq!(top2(&[5.0]), (0, f32::INFINITY));
        let (i, m) = top2(&[1.0, 1.0, 1.0]);
        assert_eq!((i, m), (0, 0.0));
    }

    #[test]
    fn all_samples_exiting_still_scores_remaining_checkpoints() {
        let net = copy_net();
        let (x, y) = toy_data();
        let cfg = SimConfig::new(vec![50, 100], 4, Readout::SpikeCount).unwrap();
        let mut engine = Engine::with_threads(1);
        let policy = ExitPolicy::Adaptive {
            patience: 3,
            min_margin: 1.0,
            min_steps: 5,
        };
        let result = engine.evaluate(&net, &x, &y, &cfg, policy).unwrap();
        assert_eq!(result.exited, vec![true; 4], "{result:?}");
        assert_eq!(result.sweep.accuracies.len(), 2);
        // Frozen scores carry both checkpoints.
        assert_eq!(result.sweep.accuracies[0].1, result.sweep.accuracies[1].1);
    }
}
