//! Integrate-and-fire neuron banks (Section 2 of the paper).

use serde::{Deserialize, Serialize};
use tcl_tensor::{par, simd, Shape, Tensor};

/// How the membrane potential is reset after a spike (Eq. 3 discussion).
///
/// Reset-to-zero discards the residual potential above threshold —
/// "considerable information loss" per Rueckauer et al. 2017 — so the paper
/// (and this reproduction's default) uses reset-by-subtraction. Both are
/// implemented; the `reset_mode` ablation harness quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ResetMode {
    /// `V ← V - V_thr` on spike (the paper's choice).
    #[default]
    Subtract,
    /// `V ← 0` on spike.
    Zero,
}

/// A bank of integrate-and-fire neurons sharing one threshold.
///
/// Implements Eqs. 1–3: each step the weighted input current `z` is added to
/// the membrane potential `V`; neurons at or above threshold emit a unit
/// spike and reset.
///
/// The bank is batch-shaped lazily: the first [`IfNeurons::step`] after a
/// [`IfNeurons::reset`] adopts the shape of its input current.
///
/// # Examples
///
/// ```
/// use tcl_snn::{IfNeurons, ResetMode};
/// use tcl_tensor::Tensor;
///
/// let mut bank = IfNeurons::new(1.0, ResetMode::Subtract);
/// let z = Tensor::from_slice(&[0.6]);
/// assert_eq!(bank.step(&z)?.data(), &[0.0]); // V = 0.6 < 1.0
/// assert_eq!(bank.step(&z)?.data(), &[1.0]); // V = 1.2 ≥ 1.0, spike
/// // Reset-by-subtraction keeps the 0.2 residue.
/// assert_eq!(bank.step(&z)?.data(), &[0.0]); // V = 0.8
/// # Ok::<(), tcl_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IfNeurons {
    threshold: f32,
    reset: ResetMode,
    potential: Option<Tensor>,
    spikes_emitted: u64,
    steps: u64,
}

impl IfNeurons {
    /// Creates a neuron bank with the given firing threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not strictly positive.
    pub fn new(threshold: f32, reset: ResetMode) -> Self {
        assert!(threshold > 0.0, "threshold must be strictly positive");
        IfNeurons {
            threshold,
            reset,
            potential: None,
            spikes_emitted: 0,
            steps: 0,
        }
    }

    /// The firing threshold `V_thr`.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The reset behaviour.
    pub fn reset_mode(&self) -> ResetMode {
        self.reset
    }

    /// Clears membrane potentials and spike counters (start of a new
    /// stimulus presentation).
    pub fn reset(&mut self) {
        self.potential = None;
        self.spikes_emitted = 0;
        self.steps = 0;
    }

    /// Advances one timestep with input current `z`, returning the 0/1 spike
    /// tensor (Eq. 2).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `z` disagrees with the potential shape
    /// established since the last reset.
    pub fn step(&mut self, current: &Tensor) -> Result<Tensor, tcl_tensor::TensorError> {
        if let Some(v) = &self.potential {
            v.expect_same_shape(current)?;
        }
        let potential = self
            .potential
            .get_or_insert_with(|| Tensor::zeros(current.shape().clone()));
        let _span =
            tcl_telemetry::span_with("neuron.step", || vec![("neurons", current.len() as f64)]);
        let mut spikes = Tensor::zeros(current.shape().clone());
        let thr = self.threshold;
        let subtract = matches!(self.reset, ResetMode::Subtract);
        // Each neuron updates independently, so large banks fan out across
        // threads in matching potential/spike chunks; the spike count is
        // recovered from the 0/1 spike tensor afterwards, which keeps the
        // tally independent of the chunking. The membrane update runs
        // through the SIMD `if_step` kernel at the caller-resolved level;
        // `if_step` is elementwise (no fusion), so every level — and every
        // chunking — produces bitwise identical trajectories.
        let level = simd::current();
        par::par_items_mut2(
            par::current(),
            potential.data_mut(),
            1,
            spikes.data_mut(),
            1,
            1,
            par::min_items_per_worker(4),
            |first, vs, ss| {
                let zs = &current.data()[first..first + vs.len()];
                simd::if_step(level, vs, zs, ss, thr, subtract);
            },
        );
        let emitted = spikes.data().iter().filter(|&&s| s != 0.0).count() as u64;
        self.spikes_emitted += emitted;
        self.steps += 1;
        if tcl_telemetry::metrics_enabled() {
            tcl_telemetry::counter_add("snn.spikes", emitted);
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &v in potential.data() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if lo <= hi {
                tcl_telemetry::gauge_set("snn.potential_min", f64::from(lo));
                tcl_telemetry::gauge_set("snn.potential_max", f64::from(hi));
            }
        }
        Ok(spikes)
    }

    /// Membrane potentials since the last reset, if any step has run.
    pub fn potential(&self) -> Option<&Tensor> {
        self.potential.as_ref()
    }

    /// Compacts the bank's batch dimension to the rows listed in `keep`
    /// (indices into the current leading dimension, in the order given).
    ///
    /// Used by the inference engine's early-exit lane compaction: when a
    /// sample retires, its membrane row is dropped from every bank so the
    /// remaining samples keep simulating in a smaller batch. Kept rows are
    /// moved bit-for-bit, so surviving samples' trajectories are unchanged.
    /// A no-op before the first step (no potential is shaped yet).
    ///
    /// # Errors
    ///
    /// Returns an error if any index in `keep` is out of range.
    pub fn retain_rows(&mut self, keep: &[usize]) -> Result<(), tcl_tensor::TensorError> {
        let Some(v) = &self.potential else {
            return Ok(());
        };
        let dims = v.dims();
        let batch = dims.first().copied().unwrap_or(0);
        if let Some(&bad) = keep.iter().find(|&&r| r >= batch) {
            return Err(tcl_tensor::TensorError::InvalidArgument {
                detail: format!("retain_rows: row {bad} out of range for batch {batch}"),
            });
        }
        let row = v.len() / batch.max(1);
        // SIMD row gather: a straight bit copy at every dispatch level.
        let mut data = vec![0.0f32; keep.len() * row];
        simd::gather_rows(simd::current(), v.data(), row, keep, &mut data);
        let mut out_dims = dims.to_vec();
        out_dims[0] = keep.len();
        self.potential = Some(Tensor::from_vec(Shape::new(out_dims), data)?);
        Ok(())
    }

    /// Appends `extra` zero-potential rows to the bank's batch dimension.
    ///
    /// A zero membrane row is exactly the state a freshly reset neuron bank
    /// adopts on its first step, so growing the batch admits new samples
    /// mid-run without disturbing existing rows: this is the admission
    /// primitive behind the lane engine's continuous batching, the dual of
    /// [`IfNeurons::retain_rows`]. A no-op before the first step (the next
    /// step shapes the bank to its full input batch anyway).
    pub fn grow_rows(&mut self, extra: usize) {
        let Some(v) = &self.potential else {
            return;
        };
        if extra == 0 {
            return;
        }
        let dims = v.dims();
        let batch = dims.first().copied().unwrap_or(0);
        // Row size from the trailing dims (v.len()/batch divides by zero on
        // a fully retired bank, which must still be growable).
        let row: usize = dims.iter().skip(1).product();
        let mut data = Vec::with_capacity((batch + extra) * row);
        data.extend_from_slice(v.data());
        data.resize((batch + extra) * row, 0.0);
        let mut out_dims = dims.to_vec();
        if out_dims.is_empty() {
            out_dims.push(batch + extra);
        } else {
            out_dims[0] = batch + extra;
        }
        // lint: allow(P1) dims/data lengths are constructed consistently above
        let grown = Tensor::from_vec(Shape::new(out_dims), data).expect("consistent grow shape");
        self.potential = Some(grown);
    }

    /// Total spikes emitted since the last reset.
    pub fn spikes_emitted(&self) -> u64 {
        self.spikes_emitted
    }

    /// Steps simulated since the last reset.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Shape of the neuron bank, if established.
    pub fn shape(&self) -> Option<&Shape> {
        self.potential.as_ref().map(Tensor::shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_input_fires_at_the_rate_coded_frequency() {
        // z = 0.3, thr = 1.0 → 3 spikes every 10 steps (rate 0.3).
        let mut bank = IfNeurons::new(1.0, ResetMode::Subtract);
        let z = Tensor::from_slice(&[0.3]);
        let mut spikes = 0.0;
        for _ in 0..100 {
            spikes += bank.step(&z).unwrap().at(0);
        }
        assert!((spikes - 30.0).abs() <= 1.0, "spikes {spikes}");
    }

    #[test]
    fn subtract_reset_preserves_residue_zero_reset_discards_it() {
        let z = Tensor::from_slice(&[0.7]);
        let mut sub = IfNeurons::new(1.0, ResetMode::Subtract);
        let mut zero = IfNeurons::new(1.0, ResetMode::Zero);
        let (mut s_sub, mut s_zero) = (0.0, 0.0);
        for _ in 0..100 {
            s_sub += sub.step(&z).unwrap().at(0);
            s_zero += zero.step(&z).unwrap().at(0);
        }
        // Exact rate 0.7 vs zero-reset's 0.5 (fires every 2nd step).
        assert!((s_sub - 70.0).abs() <= 1.0, "subtract {s_sub}");
        assert!((s_zero - 50.0).abs() <= 1.0, "zero {s_zero}");
        assert!(s_sub > s_zero);
    }

    #[test]
    fn rate_saturates_at_one_spike_per_step() {
        let mut bank = IfNeurons::new(1.0, ResetMode::Subtract);
        let z = Tensor::from_slice(&[5.0]);
        let mut spikes = 0.0;
        for _ in 0..10 {
            spikes += bank.step(&z).unwrap().at(0);
        }
        assert_eq!(spikes, 10.0);
    }

    #[test]
    fn negative_current_suppresses_firing() {
        let mut bank = IfNeurons::new(1.0, ResetMode::Subtract);
        let z = Tensor::from_slice(&[-0.5]);
        for _ in 0..20 {
            assert_eq!(bank.step(&z).unwrap().at(0), 0.0);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut bank = IfNeurons::new(1.0, ResetMode::Subtract);
        bank.step(&Tensor::from_slice(&[2.0])).unwrap();
        assert_eq!(bank.spikes_emitted(), 1);
        bank.reset();
        assert_eq!(bank.spikes_emitted(), 0);
        assert!(bank.potential().is_none());
        // A different shape is accepted after reset.
        bank.step(&Tensor::zeros([4])).unwrap();
        assert_eq!(bank.shape().unwrap().dims(), &[4]);
    }

    #[test]
    fn retain_rows_compacts_the_batch_dimension() {
        let mut bank = IfNeurons::new(1.0, ResetMode::Subtract);
        // Before the first step there is nothing to compact.
        assert!(bank.retain_rows(&[0]).is_ok());
        let z = Tensor::from_vec([3, 2], vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]).unwrap();
        bank.step(&z).unwrap();
        bank.retain_rows(&[0, 2]).unwrap();
        let v = bank.potential().unwrap();
        assert_eq!(v.dims(), &[2, 2]);
        assert_eq!(v.data(), &[0.1, 0.2, 0.5, 0.6]);
        // Subsequent steps accept the compacted batch.
        let z2 = Tensor::from_vec([2, 2], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        bank.step(&z2).unwrap();
        assert!(bank.retain_rows(&[5]).is_err());
        bank.retain_rows(&[]).unwrap();
        assert_eq!(bank.potential().unwrap().dims(), &[0, 2]);
    }

    #[test]
    fn grow_rows_appends_fresh_zero_lanes() {
        let mut bank = IfNeurons::new(1.0, ResetMode::Subtract);
        // Before the first step there is nothing to grow.
        bank.grow_rows(3);
        assert!(bank.potential().is_none());
        let z = Tensor::from_vec([2, 2], vec![0.3, 0.4, 0.5, 0.6]).unwrap();
        bank.step(&z).unwrap();
        bank.grow_rows(1);
        let v = bank.potential().unwrap();
        assert_eq!(v.dims(), &[3, 2]);
        assert_eq!(v.data(), &[0.3, 0.4, 0.5, 0.6, 0.0, 0.0]);
        // The grown lane behaves exactly like a freshly reset bank: its
        // first step integrates from zero.
        let z3 = Tensor::from_vec([3, 2], vec![0.0, 0.0, 0.0, 0.0, 0.7, 0.7]).unwrap();
        bank.step(&z3).unwrap();
        let v = bank.potential().unwrap();
        assert_eq!(v.data()[4], 0.7);
        // grow_rows(0) is a no-op.
        bank.grow_rows(0);
        assert_eq!(bank.potential().unwrap().dims(), &[3, 2]);
        // Growing an emptied bank (all lanes retired) works too.
        bank.retain_rows(&[]).unwrap();
        bank.grow_rows(2);
        assert_eq!(bank.potential().unwrap().dims(), &[2, 2]);
        assert_eq!(bank.potential().unwrap().data(), &[0.0; 4]);
    }

    #[test]
    fn shape_mismatch_within_presentation_errors() {
        let mut bank = IfNeurons::new(1.0, ResetMode::Subtract);
        bank.step(&Tensor::zeros([2])).unwrap();
        assert!(bank.step(&Tensor::zeros([3])).is_err());
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_threshold_is_rejected() {
        let _ = IfNeurons::new(0.0, ResetMode::Subtract);
    }

    #[test]
    fn spike_count_matches_rate_times_steps_within_one() {
        // Rate-coding property: for constant 0 ≤ z ≤ thr, the spike count
        // after T steps is within ±1 of z·T/thr (reset-by-subtraction).
        for &z in &[0.0f32, 0.11, 0.25, 0.5, 0.73, 0.99, 1.0] {
            let mut bank = IfNeurons::new(1.0, ResetMode::Subtract);
            let current = Tensor::from_slice(&[z]);
            let mut count = 0.0;
            let steps = 137;
            for _ in 0..steps {
                count += bank.step(&current).unwrap().at(0);
            }
            let expected = z * steps as f32;
            assert!(
                (count - expected).abs() <= 1.0,
                "z={z}: count {count} vs expected {expected}"
            );
        }
    }
}
