//! # tcl-snn
//!
//! An integrate-and-fire spiking neural network simulator, built as the
//! execution substrate for the TCL ANN-to-SNN reproduction (Ho & Chang,
//! DAC 2021).
//!
//! The model is exactly the paper's Section 2: IF neurons (Eqs. 1–2) with
//! reset-by-subtraction (Eq. 3, [`ResetMode::Subtract`]; reset-to-zero is
//! provided for the information-loss ablation), analog "real-coded" input at
//! the first layer, average pooling applied directly to spike trains, and a
//! spike-count classification readout ([`Readout::SpikeCount`]).
//!
//! Networks are built from [`SpikingNode`]s — ordinary spiking layers,
//! stateless pooling/flatten transforms, and the converted residual block
//! [`SpikingResidual`] with its NS/OS dual-input structure (the paper's
//! Figure 3C). The `tcl-core` crate produces [`SpikingNetwork`]s from
//! trained ANNs; [`evaluate`] sweeps them over latency checkpoints, and the
//! persistent [`Engine`] amortizes worker setup across repeated sweeps and
//! adds per-sample early exit ([`ExitPolicy::Adaptive`]).
//!
//! ## Example: rate coding in one layer
//!
//! ```
//! use tcl_snn::{evaluate, IfNeurons, Readout, ResetMode, SimConfig,
//!               SpikingLayer, SpikingNetwork, SpikingNode, SynapticOp};
//! use tcl_tensor::Tensor;
//!
//! // One identity layer: spike rates mirror the analog inputs.
//! let layer = SpikingLayer::new(
//!     SynapticOp::Linear {
//!         weight: Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0])?,
//!         bias: None,
//!     },
//!     IfNeurons::new(1.0, ResetMode::Subtract),
//! );
//! let mut net = SpikingNetwork::new(vec![SpikingNode::Spiking(layer)]);
//! let images = Tensor::from_vec([2, 2], vec![0.9, 0.1, 0.1, 0.9])?;
//! let cfg = SimConfig::new(vec![50], 2, Readout::SpikeCount)?;
//! let sweep = evaluate(&net, &images, &[0, 1], &cfg)?;
//! assert_eq!(sweep.final_accuracy(), 1.0);
//! # Ok::<(), tcl_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod lanes;
mod network;
mod neuron;
mod node;
mod sim;
mod synop;
mod trace;

pub use engine::{Engine, EngineResult, ExitPolicy};
pub use lanes::{LaneEngine, LaneId, LaneOutput};
pub use network::SpikingNetwork;
pub use neuron::{IfNeurons, ResetMode};
pub use node::{SpikingLayer, SpikingNode, SpikingResidual};
pub use sim::{evaluate, InputCoding, Readout, SimConfig, SweepResult};
pub use synop::SynapticOp;
pub use trace::{trace_activity, ActivityTrace, MarginTrace};
