//! Per-node spike-activity tracing.
//!
//! The latency/accuracy/energy trade-offs the paper discusses all reduce to
//! *when spikes arrive where*. [`trace_activity`] presents one stimulus and
//! records each node's firing rate at every timestep, which makes the
//! transient behaviour visible: deep layers stay silent until enough spikes
//! have propagated (the "spike wavefront" that dominates small-T error),
//! then settle to their rate-coded steady state.

use crate::network::SpikingNetwork;
use serde::{Deserialize, Serialize};
use tcl_telemetry::FixedHistogram;
use tcl_tensor::{Result, Tensor, TensorError};

/// A per-timestep record of each node's firing rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivityTrace {
    /// `rates[t][n]`: fraction of node `n`'s neurons that fired at step
    /// `t` (0 for stateless nodes).
    pub rates: Vec<Vec<f32>>,
    /// Node kind names, for labeling.
    pub node_kinds: Vec<String>,
}

impl ActivityTrace {
    /// Number of recorded timesteps.
    pub fn steps(&self) -> usize {
        self.rates.len()
    }

    /// Number of traced nodes.
    pub fn nodes(&self) -> usize {
        self.node_kinds.len()
    }

    /// Mean firing rate of node `n` over the whole trace, or `None` if `n`
    /// is out of range (or the trace is empty).
    pub fn mean_rate(&self, n: usize) -> Option<f32> {
        if self.rates.is_empty() || n >= self.nodes() {
            return None;
        }
        Some(self.rates.iter().map(|step| step[n]).sum::<f32>() / self.rates.len() as f32)
    }

    /// First timestep at which node `n` fired at all; `None` if it never
    /// fired or `n` is out of range.
    pub fn first_spike_step(&self, n: usize) -> Option<usize> {
        self.rates
            .iter()
            .position(|step| step.get(n).is_some_and(|&r| r > 0.0))
    }

    /// Folds node `n`'s per-step firing rates into a [`FixedHistogram`]
    /// over `[0, 1)` with `bins` buckets — the same representation the
    /// telemetry registry uses, so traced distributions and live
    /// `snn.firing_rate` metrics are directly comparable. Returns `None` if
    /// `n` is out of range.
    pub fn rate_histogram(&self, n: usize, bins: usize) -> Option<FixedHistogram> {
        if n >= self.nodes() {
            return None;
        }
        let mut hist = FixedHistogram::new(1.0, bins);
        for step in &self.rates {
            hist.record(f64::from(step[n]));
        }
        Some(hist)
    }
}

/// Aggregated per-timestep top-1 logit margins, recorded by the inference
/// engine's early-exit tracking.
///
/// At each timestep the engine computes, for every still-active sample, the
/// gap between the best and second-best readout score (the "margin" the
/// early-exit criterion watches). `MarginTrace` folds those per-sample
/// observations into a per-step mean over active samples, which makes the
/// margin trajectory — the paper's latency/accuracy trade-off seen from the
/// decision boundary — inspectable without storing `samples × T` floats.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MarginTrace {
    /// Sum of margins observed at each timestep (index 0 = step 1).
    margin_sum: Vec<f64>,
    /// Number of active samples observed at each timestep.
    active: Vec<u64>,
}

impl MarginTrace {
    /// An empty trace sized for `steps` timesteps.
    pub fn new(steps: usize) -> Self {
        MarginTrace {
            margin_sum: vec![0.0; steps],
            active: vec![0; steps],
        }
    }

    /// Number of timesteps the trace covers.
    pub fn steps(&self) -> usize {
        self.margin_sum.len()
    }

    /// Records one sample's margin at 0-indexed timestep `t`. Non-finite
    /// margins (single-class readouts) and out-of-range steps are ignored.
    pub fn record(&mut self, t: usize, margin: f32) {
        if t < self.margin_sum.len() && margin.is_finite() {
            self.margin_sum[t] += f64::from(margin);
            self.active[t] += 1;
        }
    }

    /// Folds another trace into this one (used to merge per-batch traces in
    /// batch order). Steps beyond `self`'s length extend it.
    pub fn merge(&mut self, other: &MarginTrace) {
        if other.margin_sum.len() > self.margin_sum.len() {
            self.margin_sum.resize(other.margin_sum.len(), 0.0);
            self.active.resize(other.active.len(), 0);
        }
        for (i, (&s, &n)) in other.margin_sum.iter().zip(&other.active).enumerate() {
            self.margin_sum[i] += s;
            self.active[i] += n;
        }
    }

    /// Mean margin over the samples active at 0-indexed step `t`, or `None`
    /// if no sample was active there (or `t` is out of range).
    pub fn mean_at(&self, t: usize) -> Option<f32> {
        match (self.margin_sum.get(t), self.active.get(t)) {
            (Some(&s), Some(&n)) if n > 0 => Some((s / n as f64) as f32),
            _ => None,
        }
    }

    /// Number of samples still active at 0-indexed step `t` (0 out of range).
    pub fn active_at(&self, t: usize) -> u64 {
        self.active.get(t).copied().unwrap_or(0)
    }
}

/// Presents `input` to a (reset) network for `steps` timesteps and records
/// per-node firing rates.
///
/// # Errors
///
/// Returns an error for `steps == 0` or network shape failures.
pub fn trace_activity(
    net: &mut SpikingNetwork,
    input: &Tensor,
    steps: usize,
) -> Result<ActivityTrace> {
    if steps == 0 {
        return Err(TensorError::InvalidArgument {
            detail: "trace needs at least one step".into(),
        });
    }
    net.reset();
    let node_kinds: Vec<String> = net
        .nodes()
        .iter()
        .map(|n| n.kind_name().to_string())
        .collect();
    let mut rates = Vec::with_capacity(steps);
    let mut prev_spikes: Vec<u64> = vec![0; net.len()];
    for _ in 0..steps {
        net.step(input)?;
        let spikes = net.spikes_per_node();
        let neurons = net.neurons_per_node();
        let step_rates: Vec<f32> = spikes
            .iter()
            .zip(&prev_spikes)
            .zip(&neurons)
            .map(|((&s, &p), &n)| {
                if n == 0 {
                    0.0
                } else {
                    (s - p) as f32 / n as f32
                }
            })
            .collect();
        prev_spikes = spikes;
        rates.push(step_rates);
    }
    Ok(ActivityTrace { rates, node_kinds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron::{IfNeurons, ResetMode};
    use crate::node::{SpikingLayer, SpikingNode};
    use crate::synop::SynapticOp;

    fn deep_net(layers: usize) -> SpikingNetwork {
        let node = || {
            SpikingNode::Spiking(SpikingLayer::new(
                SynapticOp::Linear {
                    weight: Tensor::from_vec([1, 1], vec![1.0]).unwrap(),
                    bias: None,
                },
                IfNeurons::new(1.0, ResetMode::Subtract),
            ))
        };
        SpikingNetwork::new((0..layers).map(|_| node()).collect())
    }

    #[test]
    fn rates_are_fractions() {
        let mut net = deep_net(3);
        let x = Tensor::from_vec([1, 1], vec![0.6]).unwrap();
        let trace = trace_activity(&mut net, &x, 50).unwrap();
        assert_eq!(trace.steps(), 50);
        for step in &trace.rates {
            for &r in step {
                assert!((0.0..=1.0).contains(&r));
            }
        }
        assert_eq!(trace.node_kinds, vec!["spiking"; 3]);
    }

    #[test]
    fn spike_wavefront_reaches_deeper_layers_later() {
        let mut net = deep_net(4);
        let x = Tensor::from_vec([1, 1], vec![0.4]).unwrap();
        let trace = trace_activity(&mut net, &x, 60).unwrap();
        let firsts: Vec<Option<usize>> = (0..4).map(|n| trace.first_spike_step(n)).collect();
        for w in firsts.windows(2) {
            let (a, b) = (w[0].unwrap(), w[1].unwrap());
            assert!(a <= b, "wavefront went backwards: {firsts:?}");
        }
        // Layer 0 fires by step ceil(1/0.4) - 1 = 2 (0-indexed).
        assert_eq!(firsts[0], Some(2));
    }

    #[test]
    fn steady_state_rate_matches_input() {
        let mut net = deep_net(2);
        let x = Tensor::from_vec([1, 1], vec![0.3]).unwrap();
        let trace = trace_activity(&mut net, &x, 200).unwrap();
        // Over a long trace, both layers fire at ~0.3.
        assert!((trace.mean_rate(0).unwrap() - 0.3).abs() < 0.02);
        assert!((trace.mean_rate(1).unwrap() - 0.3).abs() < 0.02);
    }

    #[test]
    fn out_of_range_node_index_returns_none() {
        let mut net = deep_net(2);
        let x = Tensor::from_vec([1, 1], vec![0.5]).unwrap();
        let trace = trace_activity(&mut net, &x, 10).unwrap();
        assert_eq!(trace.nodes(), 2);
        assert!(trace.mean_rate(2).is_none());
        assert!(trace.first_spike_step(2).is_none());
        assert!(trace.rate_histogram(2, 8).is_none());
        let empty = ActivityTrace {
            rates: vec![],
            node_kinds: vec!["spiking".into()],
        };
        assert!(empty.mean_rate(0).is_none());
    }

    #[test]
    fn rate_histogram_matches_mean_rate() {
        let mut net = deep_net(1);
        let x = Tensor::from_vec([1, 1], vec![0.5]).unwrap();
        let trace = trace_activity(&mut net, &x, 40).unwrap();
        let hist = trace.rate_histogram(0, 10).unwrap();
        assert_eq!(hist.total(), 40);
        let mean = trace.mean_rate(0).unwrap();
        assert!((hist.mean() - f64::from(mean)).abs() < 1e-6);
        // A single neuron's per-step rate is 0 or 1, so exactly two buckets
        // fill: the first (0.0) and the last (1.0 clamps into it).
        assert_eq!(hist.counts().iter().filter(|&&c| c > 0).count(), 2);
    }

    #[test]
    fn zero_steps_is_rejected() {
        let mut net = deep_net(1);
        let x = Tensor::from_vec([1, 1], vec![0.3]).unwrap();
        assert!(trace_activity(&mut net, &x, 0).is_err());
    }

    #[test]
    fn margin_trace_records_merges_and_averages() {
        let mut a = MarginTrace::new(3);
        a.record(0, 2.0);
        a.record(0, 4.0);
        a.record(1, 1.0);
        a.record(5, 9.0); // out of range: ignored
        a.record(2, f32::INFINITY); // non-finite: ignored
        assert_eq!(a.mean_at(0), Some(3.0));
        assert_eq!(a.mean_at(1), Some(1.0));
        assert_eq!(a.mean_at(2), None);
        assert_eq!(a.mean_at(7), None);
        assert_eq!(a.active_at(0), 2);
        let mut b = MarginTrace::new(4);
        b.record(0, 6.0);
        b.record(3, 0.5);
        a.merge(&b);
        assert_eq!(a.steps(), 4);
        assert_eq!(a.mean_at(0), Some(4.0));
        assert_eq!(a.mean_at(3), Some(0.5));
        // Merging a shorter (even empty) trace leaves the tail untouched.
        a.merge(&MarginTrace::new(0));
        assert_eq!(a.steps(), 4);
    }

    #[test]
    fn trace_resets_network_first() {
        let mut net = deep_net(1);
        let x = Tensor::from_vec([1, 1], vec![0.9]).unwrap();
        // Pollute the state, then trace; the trace must be deterministic.
        for _ in 0..7 {
            net.step(&x).unwrap();
        }
        let a = trace_activity(&mut net, &x, 20).unwrap();
        let b = trace_activity(&mut net, &x, 20).unwrap();
        assert_eq!(a.rates, b.rates);
    }
}
