//! Spiking network nodes.

use crate::neuron::IfNeurons;
use crate::synop::SynapticOp;
use serde::{Deserialize, Serialize};
use tcl_tensor::{ops, Result, Tensor};

/// A spiking layer: a synaptic operator feeding a bank of IF neurons.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpikingLayer {
    /// The weighted connectivity (normalized per Eq. 5).
    pub op: SynapticOp,
    /// The IF neuron bank.
    pub neurons: IfNeurons,
}

impl SpikingLayer {
    /// Creates a spiking layer.
    pub fn new(op: SynapticOp, neurons: IfNeurons) -> Self {
        SpikingLayer { op, neurons }
    }

    /// One timestep: weights the incoming spikes and integrates.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn step(&mut self, input: &Tensor) -> Result<Tensor> {
        let current = self.op.apply(input)?;
        self.neurons.step(&current)
    }
}

/// A converted residual block (the paper's Figure 3C).
///
/// The **non-identity spiking layer (NS)** corresponds to Conv1; the
/// **output spiking layer (OS)** integrates two synaptic inputs — `Ŵosn`
/// from the NS spikes (derived from Conv2) and `Ŵosi` from the block input
/// spikes (derived from ConvSh, or from the virtual identity 1×1 convolution
/// for type-A blocks). The combined bias `b̂os = (b_c2 + b_sh)/λ_out` rides
/// on the main operator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpikingResidual {
    /// NS synaptic operator (`Ŵns`).
    pub ns_op: SynapticOp,
    /// NS neuron bank.
    pub ns_neurons: IfNeurons,
    /// OS main-path operator (`Ŵosn`, carries `b̂os`).
    pub os_main: SynapticOp,
    /// OS shortcut operator (`Ŵosi`, bias-free).
    pub os_shortcut: SynapticOp,
    /// OS neuron bank.
    pub os_neurons: IfNeurons,
}

impl SpikingResidual {
    /// One timestep through NS then OS.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from either path.
    pub fn step(&mut self, input: &Tensor) -> Result<Tensor> {
        let ns_current = self.ns_op.apply(input)?;
        let ns_spikes = self.ns_neurons.step(&ns_current)?;
        let mut os_current = self.os_main.apply(&ns_spikes)?;
        os_current.add_assign(&self.os_shortcut.apply(input)?)?;
        self.os_neurons.step(&os_current)
    }

    /// Resets both neuron banks.
    pub fn reset(&mut self) {
        self.ns_neurons.reset();
        self.os_neurons.reset();
    }

    /// Compacts both banks' batch dimensions (see [`IfNeurons::retain_rows`]).
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of range.
    pub fn retain_rows(&mut self, keep: &[usize]) -> Result<()> {
        self.ns_neurons.retain_rows(keep)?;
        self.os_neurons.retain_rows(keep)
    }

    /// Appends `extra` zero-state rows to both banks (see
    /// [`IfNeurons::grow_rows`]).
    pub fn grow_rows(&mut self, extra: usize) {
        self.ns_neurons.grow_rows(extra);
        self.os_neurons.grow_rows(extra);
    }
}

/// A node of a spiking network.
///
/// Pooling, flattening, and global pooling are stateless linear transforms
/// applied directly to spike tensors — an average of unit spikes is a valid
/// (fractional) input current for the next synaptic operator.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SpikingNode {
    /// Synapses + IF neurons.
    Spiking(SpikingLayer),
    /// Converted residual block.
    Residual(SpikingResidual),
    /// 2-D average pooling over spikes.
    AvgPool {
        /// Window extent.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling over spikes.
    GlobalAvgPool,
    /// Reshape `[N, C, H, W]` spikes to `[N, C·H·W]`.
    Flatten,
}

impl SpikingNode {
    /// Advances the node one timestep.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn step(&mut self, input: &Tensor) -> Result<Tensor> {
        match self {
            SpikingNode::Spiking(layer) => layer.step(input),
            SpikingNode::Residual(block) => block.step(input),
            SpikingNode::AvgPool { kernel, stride } => ops::avg_pool2d(input, *kernel, *stride),
            SpikingNode::GlobalAvgPool => ops::global_avg_pool(input),
            SpikingNode::Flatten => {
                let (n, c, h, w) = input.shape().as_nchw()?;
                input.reshape([n, c * h * w])
            }
        }
    }

    /// Resets any neuron state.
    pub fn reset(&mut self) {
        match self {
            SpikingNode::Spiking(layer) => layer.neurons.reset(),
            SpikingNode::Residual(block) => block.reset(),
            SpikingNode::AvgPool { .. } | SpikingNode::GlobalAvgPool | SpikingNode::Flatten => {}
        }
    }

    /// Compacts any neuron state's batch dimension to the rows in `keep`
    /// (stateless nodes have no per-sample state and are no-ops).
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of range.
    pub fn retain_rows(&mut self, keep: &[usize]) -> Result<()> {
        match self {
            SpikingNode::Spiking(layer) => layer.neurons.retain_rows(keep),
            SpikingNode::Residual(block) => block.retain_rows(keep),
            SpikingNode::AvgPool { .. } | SpikingNode::GlobalAvgPool | SpikingNode::Flatten => {
                Ok(())
            }
        }
    }

    /// Appends `extra` fresh (zero-state) rows to any neuron state's batch
    /// dimension — the admission dual of [`SpikingNode::retain_rows`]
    /// (stateless nodes have no per-sample state and are no-ops).
    pub fn grow_rows(&mut self, extra: usize) {
        match self {
            SpikingNode::Spiking(layer) => layer.neurons.grow_rows(extra),
            SpikingNode::Residual(block) => block.grow_rows(extra),
            SpikingNode::AvgPool { .. } | SpikingNode::GlobalAvgPool | SpikingNode::Flatten => {}
        }
    }

    /// Short lowercase kind name for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            SpikingNode::Spiking(_) => "spiking",
            SpikingNode::Residual(_) => "residual",
            SpikingNode::AvgPool { .. } => "avgpool",
            SpikingNode::GlobalAvgPool => "globalavgpool",
            SpikingNode::Flatten => "flatten",
        }
    }

    /// Spikes emitted since the last reset (both banks for residual nodes).
    pub fn spikes_emitted(&self) -> u64 {
        match self {
            SpikingNode::Spiking(l) => l.neurons.spikes_emitted(),
            SpikingNode::Residual(b) => {
                b.ns_neurons.spikes_emitted() + b.os_neurons.spikes_emitted()
            }
            _ => 0,
        }
    }

    /// Number of neurons (0 until shaped by the first step; stateless nodes
    /// always report 0).
    pub fn neuron_count(&self) -> usize {
        match self {
            SpikingNode::Spiking(l) => l.neurons.shape().map_or(0, |s| s.len()),
            SpikingNode::Residual(b) => {
                b.ns_neurons.shape().map_or(0, |s| s.len())
                    + b.os_neurons.shape().map_or(0, |s| s.len())
            }
            _ => 0,
        }
    }

    /// Spikes emitted per IF bank since the last reset, in bank order
    /// (spiking layers have one bank, residual blocks two — NS then OS;
    /// stateless nodes have none). Flattening these vectors in node order
    /// yields the same ordering as the conversion's activation sites, which
    /// is what the per-layer conversion diagnostics rely on.
    pub fn spikes_per_bank(&self) -> Vec<u64> {
        match self {
            SpikingNode::Spiking(l) => vec![l.neurons.spikes_emitted()],
            SpikingNode::Residual(b) => {
                vec![b.ns_neurons.spikes_emitted(), b.os_neurons.spikes_emitted()]
            }
            _ => Vec::new(),
        }
    }

    /// Neuron count per IF bank, in the same bank order as
    /// [`SpikingNode::spikes_per_bank`] (0 until shaped by the first step).
    pub fn neurons_per_bank(&self) -> Vec<usize> {
        match self {
            SpikingNode::Spiking(l) => vec![l.neurons.shape().map_or(0, |s| s.len())],
            SpikingNode::Residual(b) => vec![
                b.ns_neurons.shape().map_or(0, |s| s.len()),
                b.os_neurons.shape().map_or(0, |s| s.len()),
            ],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron::ResetMode;

    fn unit_linear(in_f: usize, out_f: usize) -> SynapticOp {
        // Identity-ish: out_f x in_f with ones on the diagonal.
        let mut w = Tensor::zeros([out_f, in_f]);
        for i in 0..out_f.min(in_f) {
            w.data_mut()[i * in_f + i] = 1.0;
        }
        SynapticOp::Linear {
            weight: w,
            bias: None,
        }
    }

    #[test]
    fn spiking_layer_rate_codes_its_input() {
        let mut layer =
            SpikingLayer::new(unit_linear(1, 1), IfNeurons::new(1.0, ResetMode::Subtract));
        let x = Tensor::from_vec([1, 1], vec![0.4]).unwrap();
        let mut count = 0.0;
        for _ in 0..50 {
            count += layer.step(&x).unwrap().at(0);
        }
        assert!((count - 20.0).abs() <= 1.0);
    }

    #[test]
    fn flatten_node_reshapes_spikes() {
        let mut node = SpikingNode::Flatten;
        let x = Tensor::ones([2, 3, 2, 2]);
        let y = node.step(&x).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
    }

    #[test]
    fn avgpool_node_produces_fractional_currents() {
        let mut node = SpikingNode::AvgPool {
            kernel: 2,
            stride: 2,
        };
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let y = node.step(&x).unwrap();
        assert_eq!(y.data(), &[0.5]);
    }

    #[test]
    fn residual_identity_paths_superpose() {
        // NS path contributes nothing (zero weights); shortcut is identity,
        // so the block should rate-code its input directly.
        let zero_conv = SynapticOp::Linear {
            weight: Tensor::zeros([2, 2]),
            bias: None,
        };
        let mut block = SpikingResidual {
            ns_op: zero_conv.clone(),
            ns_neurons: IfNeurons::new(1.0, ResetMode::Subtract),
            os_main: zero_conv,
            os_shortcut: unit_linear(2, 2),
            os_neurons: IfNeurons::new(1.0, ResetMode::Subtract),
        };
        let x = Tensor::from_vec([1, 2], vec![0.5, 0.25]).unwrap();
        let mut counts = [0.0f32; 2];
        for _ in 0..40 {
            let s = block.step(&x).unwrap();
            counts[0] += s.at(0);
            counts[1] += s.at(1);
        }
        assert!((counts[0] - 20.0).abs() <= 1.0, "{counts:?}");
        assert!((counts[1] - 10.0).abs() <= 1.0, "{counts:?}");
    }

    #[test]
    fn node_reset_clears_counters() {
        let mut node = SpikingNode::Spiking(SpikingLayer::new(
            unit_linear(1, 1),
            IfNeurons::new(1.0, ResetMode::Subtract),
        ));
        let x = Tensor::from_vec([1, 1], vec![2.0]).unwrap();
        node.step(&x).unwrap();
        assert_eq!(node.spikes_emitted(), 1);
        assert_eq!(node.neuron_count(), 1);
        node.reset();
        assert_eq!(node.spikes_emitted(), 0);
        assert_eq!(node.neuron_count(), 0);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(SpikingNode::Flatten.kind_name(), "flatten");
        assert_eq!(
            SpikingNode::AvgPool {
                kernel: 2,
                stride: 2
            }
            .kind_name(),
            "avgpool"
        );
    }
}
