//! Property-based tests of the IF neuron's rate-coding contract.

use proptest::prelude::*;
use tcl_snn::{IfNeurons, ResetMode, SpikingLayer, SpikingNetwork, SpikingNode, SynapticOp};
use tcl_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn subtract_reset_spike_count_tracks_rate_within_one(
        z in 0.0f32..1.0,
        thr in 0.2f32..3.0,
        steps in 10usize..300,
    ) {
        // For constant current 0 ≤ z, spikes after T steps must be within
        // ±1 of z·T/thr (clamped to T) — the rate-coding identity the whole
        // conversion rests on.
        let mut bank = IfNeurons::new(thr, ResetMode::Subtract);
        let current = Tensor::from_slice(&[z]);
        let mut count = 0.0f32;
        for _ in 0..steps {
            count += bank.step(&current).unwrap().at(0);
        }
        let expected = (z * steps as f32 / thr).min(steps as f32);
        prop_assert!((count - expected).abs() <= 1.0,
            "z={} thr={} T={}: count {} vs expected {}", z, thr, steps, count, expected);
    }

    #[test]
    fn zero_reset_never_outfires_subtract_reset(
        z in 0.0f32..2.0,
        steps in 10usize..200,
    ) {
        let current = Tensor::from_slice(&[z]);
        let mut sub = IfNeurons::new(1.0, ResetMode::Subtract);
        let mut zero = IfNeurons::new(1.0, ResetMode::Zero);
        let (mut cs, mut cz) = (0.0f32, 0.0f32);
        for _ in 0..steps {
            cs += sub.step(&current).unwrap().at(0);
            cz += zero.step(&current).unwrap().at(0);
        }
        prop_assert!(cz <= cs + 1e-6, "zero-reset fired more: {} vs {}", cz, cs);
    }

    #[test]
    fn spikes_are_binary_and_counted_exactly(
        values in prop::collection::vec(-2.0f32..2.0, 1..32),
        steps in 1usize..50,
    ) {
        let mut bank = IfNeurons::new(1.0, ResetMode::Subtract);
        let current = Tensor::from_slice(&values);
        let mut manual = 0u64;
        for _ in 0..steps {
            let s = bank.step(&current).unwrap();
            for &v in s.data() {
                prop_assert!(v == 0.0 || v == 1.0);
                manual += v as u64;
            }
        }
        prop_assert_eq!(bank.spikes_emitted(), manual);
        prop_assert_eq!(bank.steps(), steps as u64);
    }

    #[test]
    fn neurons_process_batch_elements_independently(
        a in 0.0f32..1.0,
        b in 0.0f32..1.0,
        steps in 5usize..100,
    ) {
        // Running [a, b] together equals running a and b separately.
        let mut joint = IfNeurons::new(1.0, ResetMode::Subtract);
        let mut only_a = IfNeurons::new(1.0, ResetMode::Subtract);
        let mut only_b = IfNeurons::new(1.0, ResetMode::Subtract);
        let (mut ja, mut jb, mut sa, mut sb) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..steps {
            let s = joint.step(&Tensor::from_slice(&[a, b])).unwrap();
            ja += s.at(0);
            jb += s.at(1);
            sa += only_a.step(&Tensor::from_slice(&[a])).unwrap().at(0);
            sb += only_b.step(&Tensor::from_slice(&[b])).unwrap().at(0);
        }
        prop_assert_eq!(ja, sa);
        prop_assert_eq!(jb, sb);
    }

    #[test]
    fn network_total_spikes_equals_sum_of_nodes(
        w in 0.1f32..1.0,
        steps in 1usize..60,
    ) {
        let layer = |weight: f32| SpikingNode::Spiking(SpikingLayer::new(
            SynapticOp::Linear {
                weight: Tensor::from_vec([1, 1], vec![weight]).unwrap(),
                bias: None,
            },
            IfNeurons::new(1.0, ResetMode::Subtract),
        ));
        let mut net = SpikingNetwork::new(vec![layer(w), layer(1.0)]);
        let x = Tensor::from_vec([1, 1], vec![0.8]).unwrap();
        for _ in 0..steps {
            net.step(&x).unwrap();
        }
        let total: u64 = net.spikes_per_node().iter().sum();
        prop_assert_eq!(net.total_spikes(), total);
    }

    /// The IF membrane update is elementwise (add / compare / subtract, no
    /// fusion), so every SIMD dispatch level must replay the scalar
    /// trajectory **bitwise** — spikes and residual potentials both. This
    /// is what lets golden SNN numbers survive runtime dispatch.
    #[test]
    fn if_step_trajectories_are_bitwise_identical_across_simd_levels(
        neurons in 1usize..70,
        thr in 0.2f32..2.0,
        steps in 1usize..30,
        subtract in 0u8..2,
        seed in 0u64..1_000_000,
    ) {
        let reset = if subtract == 1 { ResetMode::Subtract } else { ResetMode::Zero };
        let mut rng = tcl_tensor::SeededRng::new(seed);
        let currents: Vec<Tensor> = (0..steps)
            .map(|_| rng.uniform_tensor([neurons], -0.3, 1.2))
            .collect();
        let run = |level: tcl_tensor::simd::Level| {
            tcl_tensor::simd::with_level(level, || {
                let mut bank = IfNeurons::new(thr, reset);
                let mut spike_bits: Vec<u32> = Vec::new();
                for z in &currents {
                    let s = bank.step(z).unwrap();
                    spike_bits.extend(s.data().iter().map(|v| v.to_bits()));
                }
                let potential_bits: Vec<u32> = bank
                    .potential()
                    .unwrap()
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                (spike_bits, potential_bits)
            })
        };
        let reference = run(tcl_tensor::simd::Level::Scalar);
        for level in tcl_tensor::simd::Level::available() {
            let got = run(level);
            prop_assert_eq!(
                &got, &reference,
                "level {} diverged (neurons={} thr={} steps={})",
                level.name(), neurons, thr, steps
            );
        }
    }

    #[test]
    fn reset_makes_presentations_independent(
        z in 0.0f32..1.0,
        steps in 5usize..60,
    ) {
        let current = Tensor::from_slice(&[z]);
        let mut bank = IfNeurons::new(1.0, ResetMode::Subtract);
        let mut first = 0.0f32;
        for _ in 0..steps {
            first += bank.step(&current).unwrap().at(0);
        }
        bank.reset();
        let mut second = 0.0f32;
        for _ in 0..steps {
            second += bank.step(&current).unwrap().at(0);
        }
        prop_assert_eq!(first, second);
    }
}
