//! Equivalence suite: the batched engine with early exit off is bitwise
//! identical to a from-scratch serial sweep.
//!
//! The oracle below re-implements the fixed-T evaluation semantics from the
//! public API only (clone, reset, step, spike counts, `argmax_rows`), one
//! batch at a time on the calling thread. The engine — with its worker pool,
//! work-stealing batch claims, and cached replicas — must reproduce the
//! oracle's accuracies, spike totals, and per-sample predictions *exactly*,
//! for every thread count and for batch sizes that do not divide the sample
//! count. Run under `TCL_THREADS=1` and `TCL_THREADS=4` by `ci.sh` to cover
//! the kernel-level fan-out dimension as well.

use proptest::prelude::*;
use std::sync::Arc;
use tcl_snn::{
    Engine, ExitPolicy, IfNeurons, InputCoding, Readout, ResetMode, SimConfig, SpikingLayer,
    SpikingNetwork, SpikingNode, SynapticOp,
};
use tcl_tensor::{ops, SeededRng, Tensor};

/// A small random two-layer network: `features → hidden → classes`.
fn random_net(seed: u64, features: usize, hidden: usize, classes: usize) -> SpikingNetwork {
    let mut rng = SeededRng::new(seed);
    let l1 = SpikingLayer::new(
        SynapticOp::Linear {
            weight: rng.uniform_tensor([hidden, features], -0.8, 0.8),
            bias: Some(rng.uniform_tensor([hidden], -0.1, 0.1)),
        },
        IfNeurons::new(1.0, ResetMode::Subtract),
    );
    let l2 = SpikingLayer::new(
        SynapticOp::Linear {
            weight: rng.uniform_tensor([classes, hidden], -0.8, 0.8),
            bias: None,
        },
        IfNeurons::new(1.0, ResetMode::Subtract),
    );
    SpikingNetwork::new(vec![SpikingNode::Spiking(l1), SpikingNode::Spiking(l2)])
}

fn random_data(seed: u64, samples: usize, features: usize, classes: usize) -> (Tensor, Vec<usize>) {
    let mut rng = SeededRng::new(seed ^ 0xDA7A);
    let images = rng.uniform_tensor([samples, features], 0.0, 1.0);
    let labels = (0..samples).map(|_| rng.below(classes)).collect();
    (images, labels)
}

struct OracleResult {
    accuracies: Vec<(usize, f32)>,
    total_spikes: u64,
    predictions: Vec<usize>,
}

/// Serial fixed-T evaluation from first principles (public API only).
fn oracle(
    net: &SpikingNetwork,
    images: &Tensor,
    labels: &[usize],
    config: &SimConfig,
) -> OracleResult {
    let n = images.dims()[0];
    let features = images.len() / n;
    let max_t = *config.checkpoints.last().unwrap();
    let mut correct = vec![0usize; config.checkpoints.len()];
    let mut total_spikes = 0u64;
    let mut predictions = Vec::with_capacity(n);
    let batch_count = n.div_ceil(config.batch_size);
    for batch in 0..batch_count {
        let start = batch * config.batch_size;
        let end = (start + config.batch_size).min(n);
        let x = Tensor::from_vec(
            [end - start, features],
            images.data()[start * features..end * features].to_vec(),
        )
        .unwrap();
        let mut rng = match config.input_coding {
            InputCoding::Analog => None,
            InputCoding::Poisson { seed } => Some(SeededRng::new(
                seed ^ (batch as u64).wrapping_mul(0x9E37_79B9),
            )),
        };
        let mut worker = net.clone();
        worker.reset();
        let mut counts: Option<Tensor> = None;
        let mut ck = 0usize;
        for t in 1..=max_t {
            let stimulus = match &mut rng {
                None => x.clone(),
                Some(r) => x.map(|v| {
                    let p = v.abs().min(1.0);
                    if r.uniform(0.0, 1.0) < p {
                        v.signum()
                    } else {
                        0.0
                    }
                }),
            };
            let spikes = worker.step(&stimulus).unwrap();
            match &mut counts {
                Some(c) => c.add_assign(&spikes).unwrap(),
                None => counts = Some(spikes),
            }
            if ck < config.checkpoints.len() && t == config.checkpoints[ck] {
                let counts = counts.as_ref().unwrap();
                let scores = match config.readout {
                    Readout::SpikeCount => counts.clone(),
                    Readout::Membrane => {
                        let thr = worker.output_threshold().unwrap_or(1.0);
                        let mut s = counts.scale(thr);
                        if let Some(v) = worker.output_potential() {
                            s.add_assign(v).unwrap();
                        }
                        s
                    }
                };
                let preds = ops::argmax_rows(&scores).unwrap();
                correct[ck] += preds
                    .iter()
                    .zip(&labels[start..end])
                    .filter(|(p, l)| p == l)
                    .count();
                ck += 1;
                if ck == config.checkpoints.len() {
                    predictions.extend(preds);
                }
            }
        }
        total_spikes += worker.total_spikes();
    }
    OracleResult {
        accuracies: config
            .checkpoints
            .iter()
            .zip(&correct)
            .map(|(&t, &c)| (t, c as f32 / n as f32))
            .collect(),
        total_spikes,
        predictions,
    }
}

fn check_case(seed: u64, samples: usize, batch_size: usize, poisson: bool, membrane: bool) {
    let features = 3;
    let classes = 3;
    let net = random_net(seed, features, 5, classes);
    let (images, labels) = random_data(seed, samples, features, classes);
    let readout = if membrane {
        Readout::Membrane
    } else {
        Readout::SpikeCount
    };
    let mut config = SimConfig::new(vec![4, 21], batch_size, readout).unwrap();
    if poisson {
        config = config.with_input_coding(InputCoding::Poisson {
            seed: seed ^ 0xBEEF,
        });
    }
    let reference = oracle(&net, &images, &labels, &config);
    let shared = Arc::new(net.clone());
    for threads in [1usize, 4] {
        let mut engine = Engine::with_threads(threads);
        // Two passes over the same Arc: the second exercises the cached
        // per-worker replicas (no re-clone) and must still match.
        for pass in 0..2 {
            let result = engine
                .evaluate_shared(&shared, &images, &labels, &config, ExitPolicy::Off)
                .unwrap();
            assert_eq!(
                result.sweep.accuracies, reference.accuracies,
                "accuracies diverged (threads={threads}, pass={pass}, seed={seed})"
            );
            assert_eq!(
                result.sweep.total_spikes, reference.total_spikes,
                "spike totals diverged (threads={threads}, pass={pass}, seed={seed})"
            );
            assert_eq!(
                result.predictions, reference.predictions,
                "predictions diverged (threads={threads}, pass={pass}, seed={seed})"
            );
        }
    }
    // The one-shot wrapper rides the same engine and must agree too.
    let sweep = tcl_snn::evaluate(&net, &images, &labels, &config).unwrap();
    assert_eq!(sweep.accuracies, reference.accuracies);
    assert_eq!(sweep.total_spikes, reference.total_spikes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline equivalence property: for random networks, data, batch
    /// sizes (including ones that leave a ragged final batch), input codings
    /// and readouts, the engine with `ExitPolicy::Off` is bitwise identical
    /// to the serial oracle under 1 and 4 engine threads.
    #[test]
    fn engine_off_is_bitwise_identical_to_serial_oracle(
        seed in 0u64..1_000_000,
        samples in 5usize..12,
        batch_size in 1usize..8,
        coding in 0u8..2,
        readout in 0u8..2,
    ) {
        check_case(seed, samples, batch_size, coding == 1, readout == 1);
    }
}

/// Pin the ragged-batch edge cases explicitly (batch sizes that do not
/// divide the sample count, batch larger than the whole set).
#[test]
fn ragged_batches_match_the_oracle() {
    for (samples, batch_size) in [(7, 3), (5, 4), (9, 2), (4, 16), (6, 5)] {
        check_case(0xC0FFEE, samples, batch_size, false, false);
        check_case(0xC0FFEE, samples, batch_size, true, true);
    }
}
