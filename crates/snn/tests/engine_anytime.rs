//! Anytime-safety of the early-exit criterion.
//!
//! A retirement is *anytime-safe* when the class predicted at the exit step
//! is the class the fixed-T sweep would have predicted at full latency. With
//! a sane patience window the margin-stability criterion should almost never
//! fire on a sample whose prediction later flips; with an aggressively small
//! window (`patience = 1`) flips become possible and the suite records and
//! bounds the violation rate instead of demanding zero.

use proptest::prelude::*;
use tcl_snn::{
    Engine, ExitPolicy, IfNeurons, Readout, ResetMode, SimConfig, SpikingLayer, SpikingNetwork,
    SpikingNode, SynapticOp,
};
use tcl_tensor::{SeededRng, Tensor};

fn random_net(seed: u64, features: usize, hidden: usize, classes: usize) -> SpikingNetwork {
    let mut rng = SeededRng::new(seed);
    let l1 = SpikingLayer::new(
        SynapticOp::Linear {
            weight: rng.uniform_tensor([hidden, features], -0.8, 0.8),
            bias: Some(rng.uniform_tensor([hidden], -0.1, 0.1)),
        },
        IfNeurons::new(1.0, ResetMode::Subtract),
    );
    let l2 = SpikingLayer::new(
        SynapticOp::Linear {
            weight: rng.uniform_tensor([classes, hidden], -0.8, 0.8),
            bias: None,
        },
        IfNeurons::new(1.0, ResetMode::Subtract),
    );
    SpikingNetwork::new(vec![SpikingNode::Spiking(l1), SpikingNode::Spiking(l2)])
}

fn random_images(seed: u64, samples: usize, features: usize) -> (Tensor, Vec<usize>) {
    let mut rng = SeededRng::new(seed ^ 0xA11E);
    let images = rng.uniform_tensor([samples, features], 0.0, 1.0);
    let labels = (0..samples).map(|_| rng.below(3)).collect();
    (images, labels)
}

/// Runs one net under `policy` and counts exit/violation statistics against
/// the fixed-T reference predictions.
fn violations(seed: u64, policy: ExitPolicy) -> (usize, usize, usize) {
    let net = random_net(seed, 3, 5, 3);
    let (images, labels) = random_images(seed, 8, 3);
    let cfg = SimConfig::new(vec![64], 4, Readout::SpikeCount).unwrap();
    let mut engine = Engine::with_threads(1);
    let fixed = engine
        .evaluate(&net, &images, &labels, &cfg, ExitPolicy::Off)
        .unwrap();
    let adaptive = engine
        .evaluate(&net, &images, &labels, &cfg, policy)
        .unwrap();
    let mut exited = 0usize;
    let mut flipped = 0usize;
    for i in 0..labels.len() {
        if adaptive.exited[i] {
            exited += 1;
            if adaptive.predictions[i] != fixed.predictions[i] {
                flipped += 1;
            }
        } else {
            // A sample that rode to max_t saw exactly the fixed trajectory,
            // so its prediction must match bitwise.
            assert_eq!(
                adaptive.predictions[i], fixed.predictions[i],
                "non-exited sample {i} diverged (seed={seed})"
            );
        }
    }
    (labels.len(), exited, flipped)
}

/// Moderate patience: across a deterministic population of random networks,
/// exits are common and essentially never anytime-unsafe.
#[test]
fn moderate_patience_is_anytime_safe() {
    let policy = ExitPolicy::Adaptive {
        patience: 10,
        min_margin: 2.0,
        min_steps: 12,
    };
    let (mut total, mut exited, mut flipped) = (0, 0, 0);
    for seed in 0..30u64 {
        let (n, e, f) = violations(seed, policy);
        total += n;
        exited += e;
        flipped += f;
    }
    assert!(
        exited * 2 >= total,
        "criterion too timid: only {exited}/{total} samples exited"
    );
    // The margin-stability window should make flips vanishingly rare; allow
    // at most 2% of exits to flip so the bound is not knife-edged.
    assert!(
        flipped * 50 <= exited,
        "anytime violations too common: {flipped}/{exited} exits flipped"
    );
}

/// Aggressive patience = 1: exits fire at the first confident-looking step,
/// so flips can happen — record the rate and keep it loosely bounded. This
/// documents the trade-off rather than pretending it away.
#[test]
fn aggressive_patience_bounds_the_violation_rate() {
    // patience=1 fires on the first step whose margin clears one spike —
    // long before the rate code has converged. (min_margin=0 would be fully
    // degenerate: every sample exits at t=1 on all-zero tied scores.)
    let policy = ExitPolicy::Adaptive {
        patience: 1,
        min_margin: 1.0,
        min_steps: 2,
    };
    let (mut total, mut exited, mut flipped) = (0, 0, 0);
    for seed in 100..130u64 {
        let (n, e, f) = violations(seed, policy);
        total += n;
        exited += e;
        flipped += f;
    }
    assert!(exited > 0, "patience=1 should exit aggressively");
    // Even the most aggressive setting must not flip a majority: the margin
    // criterion still anchors exits to the eventual winner most of the time.
    assert!(
        flipped * 2 <= exited,
        "patience=1 flipped {flipped}/{exited} exits (total {total})"
    );
    println!("patience=1 anytime violation rate: {flipped}/{exited} exits ({total} samples)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Structural invariants of every adaptive run: exit steps respect
    /// `min_steps` and `max_t`, `exited` is consistent with `exit_steps`,
    /// saved steps add up, and margins were tracked for active samples.
    #[test]
    fn adaptive_runs_keep_exit_bookkeeping_consistent(
        seed in 0u64..100_000,
        patience in 1usize..12,
        min_steps in 1usize..20,
    ) {
        let net = random_net(seed, 3, 4, 3);
        let (images, labels) = random_images(seed, 6, 3);
        let max_t = 48usize;
        let cfg = SimConfig::new(vec![16, max_t], 4, Readout::SpikeCount).unwrap();
        let policy = ExitPolicy::Adaptive { patience, min_margin: 1.0, min_steps };
        let mut engine = Engine::with_threads(2);
        let r = engine.evaluate(&net, &images, &labels, &cfg, policy).unwrap();
        let mut saved = 0u64;
        for (i, (&step, &e)) in r.exit_steps.iter().zip(&r.exited).enumerate() {
            prop_assert!(step >= 1 && step <= max_t, "sample {} step {}", i, step);
            if e {
                prop_assert!(step >= min_steps && step < max_t);
            } else {
                prop_assert_eq!(step, max_t);
            }
            saved += (max_t - step) as u64;
        }
        prop_assert_eq!(r.saved_steps, saved);
        prop_assert_eq!(r.margins.steps(), max_t);
        prop_assert_eq!(r.margins.active_at(0), labels.len() as u64);
        let mean = r.exit_steps.iter().sum::<usize>() as f32 / labels.len() as f32;
        prop_assert!((r.mean_exit_step - mean).abs() < 1e-4);
    }
}
