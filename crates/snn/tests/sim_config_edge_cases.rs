//! Edge-case coverage for `SimConfig` validation.
//!
//! All `SimConfig` fields are public (literal construction and serde both
//! need that), so a config can reach the evaluators without ever passing
//! through `SimConfig::new`. Historically an empty checkpoint list then hit
//! an `expect("validated nonempty")` panic inside `evaluate`; these tests
//! pin the contract that *every* entry point re-validates and returns a
//! clear error instead.

use tcl_snn::{
    evaluate, Engine, ExitPolicy, IfNeurons, InputCoding, Readout, ResetMode, SimConfig,
    SpikingLayer, SpikingNetwork, SpikingNode, SynapticOp,
};
use tcl_tensor::Tensor;

fn tiny_net() -> SpikingNetwork {
    SpikingNetwork::new(vec![SpikingNode::Spiking(SpikingLayer::new(
        SynapticOp::Linear {
            weight: Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
            bias: None,
        },
        IfNeurons::new(1.0, ResetMode::Subtract),
    ))])
}

fn raw_config(checkpoints: Vec<usize>, batch_size: usize) -> SimConfig {
    SimConfig {
        checkpoints,
        batch_size,
        readout: Readout::SpikeCount,
        input_coding: InputCoding::Analog,
    }
}

#[test]
fn validate_accepts_what_new_accepts() {
    assert!(raw_config(vec![1], 1).validate().is_ok());
    assert!(raw_config(vec![50, 100, 150, 200, 250], 32)
        .validate()
        .is_ok());
    assert!(SimConfig::table1(8).unwrap().validate().is_ok());
}

#[test]
fn validate_rejects_empty_checkpoints_with_a_clear_message() {
    let err = raw_config(vec![], 4).validate().unwrap_err();
    assert!(err.to_string().contains("checkpoint"), "{err}");
}

#[test]
fn validate_rejects_unsorted_duplicate_and_zero_checkpoints() {
    for bad in [
        vec![0],
        vec![0, 5],
        vec![5, 3],
        vec![5, 5],
        vec![10, 20, 15],
    ] {
        let err = raw_config(bad.clone(), 4).validate().unwrap_err();
        assert!(
            err.to_string().contains("strictly increasing"),
            "{bad:?}: {err}"
        );
    }
}

#[test]
fn validate_rejects_zero_batch_size() {
    let err = raw_config(vec![5], 0).validate().unwrap_err();
    assert!(err.to_string().contains("batch size"), "{err}");
}

#[test]
fn evaluate_reports_errors_for_bypassed_construction_instead_of_panicking() {
    let net = tiny_net();
    let images = Tensor::from_vec([2, 2], vec![0.9, 0.1, 0.1, 0.9]).unwrap();
    let labels = vec![0, 1];
    // Empty checkpoints: the historical panic path.
    let err = evaluate(&net, &images, &labels, &raw_config(vec![], 2)).unwrap_err();
    assert!(err.to_string().contains("checkpoint"), "{err}");
    // Unsorted checkpoints and zero batch size are rejected the same way.
    assert!(evaluate(&net, &images, &labels, &raw_config(vec![9, 4], 2)).is_err());
    assert!(evaluate(&net, &images, &labels, &raw_config(vec![4], 0)).is_err());
}

#[test]
fn engine_validates_configs_before_touching_the_pool() {
    let net = tiny_net();
    let images = Tensor::from_vec([2, 2], vec![0.9, 0.1, 0.1, 0.9]).unwrap();
    let labels = vec![0, 1];
    let mut engine = Engine::with_threads(4);
    let err = engine
        .evaluate(
            &net,
            &images,
            &labels,
            &raw_config(vec![], 2),
            ExitPolicy::Off,
        )
        .unwrap_err();
    assert!(err.to_string().contains("checkpoint"), "{err}");
    // The engine stays usable after a rejected config.
    let good = SimConfig::new(vec![10], 2, Readout::SpikeCount).unwrap();
    let result = engine
        .evaluate(&net, &images, &labels, &good, ExitPolicy::Off)
        .unwrap();
    assert_eq!(result.sweep.final_accuracy(), 1.0);
}

#[test]
fn mutating_a_validated_config_requires_revalidation() {
    // The builder path validates once, but the public fields allow later
    // mutation; validate() is the cheap recheck call sites can lean on.
    let mut cfg = SimConfig::table1(16).unwrap();
    assert!(cfg.validate().is_ok());
    cfg.checkpoints.clear();
    assert!(cfg.validate().is_err());
    cfg.checkpoints = vec![10, 20];
    assert!(cfg.validate().is_ok());
    cfg.batch_size = 0;
    assert!(cfg.validate().is_err());
}
