//! Error type for the conversion pipeline.

use std::error::Error;
use std::fmt;
use tcl_nn::NnError;
use tcl_tensor::TensorError;

/// Error raised by ANN-to-SNN conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum ConvertError {
    /// An underlying tensor kernel failed.
    Tensor(TensorError),
    /// The ANN framework reported a graph/training failure.
    Nn(NnError),
    /// The network contains a construct with no spiking equivalent (e.g.
    /// max pooling — Section 3.1 of the paper).
    Unsupported {
        /// Description of the offending construct.
        detail: String,
    },
    /// The [`crate::NormStrategy::TrainedClip`] strategy was requested but a
    /// ReLU site has no trainable clipping layer.
    MissingClip {
        /// Which site lacks a clip.
        detail: String,
    },
    /// Calibration data is missing, empty, or inconsistent with the network.
    Calibration {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::Tensor(e) => write!(f, "tensor error: {e}"),
            ConvertError::Nn(e) => write!(f, "network error: {e}"),
            ConvertError::Unsupported { detail } => {
                write!(f, "unsupported construct for conversion: {detail}")
            }
            ConvertError::MissingClip { detail } => {
                write!(f, "trained-clip strategy needs a clipping layer: {detail}")
            }
            ConvertError::Calibration { detail } => write!(f, "calibration error: {detail}"),
        }
    }
}

impl Error for ConvertError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConvertError::Tensor(e) => Some(e),
            ConvertError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ConvertError {
    fn from(e: TensorError) -> Self {
        ConvertError::Tensor(e)
    }
}

impl From<NnError> for ConvertError {
    fn from(e: NnError) -> Self {
        ConvertError::Nn(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ConvertError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_from_substrate_errors() {
        let te = TensorError::RankMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(matches!(ConvertError::from(te), ConvertError::Tensor(_)));
        let ne = NnError::Graph { detail: "x".into() };
        assert!(matches!(ConvertError::from(ne), ConvertError::Nn(_)));
    }

    #[test]
    fn display_is_informative() {
        let e = ConvertError::Unsupported {
            detail: "max pooling".into(),
        };
        assert!(e.to_string().contains("max pooling"));
    }

    #[test]
    fn source_chains() {
        let e = ConvertError::Tensor(TensorError::InvalidArgument { detail: "d".into() });
        assert!(e.source().is_some());
        let e = ConvertError::Calibration { detail: "d".into() };
        assert!(e.source().is_none());
    }
}
