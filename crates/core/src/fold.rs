//! Batch-norm folding (Eq. 7 of the paper).
//!
//! Batch normalization has no spiking implementation, so after training it
//! is removed by absorbing it into the preceding convolution:
//!
//! ```text
//! W̃ᵢⱼ = (γᵢ/σᵢ)·Wᵢⱼ          b̃ᵢ = (γᵢ/σᵢ)·(bᵢ − µᵢ) + βᵢ
//! ```
//!
//! with `σᵢ = sqrt(running_varᵢ + ε)`. The fold is exact in evaluation mode
//! (a property-tested invariant): the folded network produces identical
//! outputs to the original.

use crate::error::{ConvertError, Result};
use tcl_nn::layers::{BatchNorm2d, Conv2d, ResidualBlock, Shortcut};
use tcl_nn::{Layer, Network};
use tcl_tensor::Tensor;

/// Folds `bn` into `conv`, returning a new bias-carrying convolution.
fn fold_conv_bn(conv: &Conv2d, bn: &BatchNorm2d) -> Result<Conv2d> {
    let (out_c, in_c, kh, kw) = conv.weight.value.shape().as_nchw()?;
    if bn.channels() != out_c {
        return Err(ConvertError::Unsupported {
            detail: format!(
                "batch-norm over {} channels follows a convolution with {out_c} outputs",
                bn.channels()
            ),
        });
    }
    let mut weight = conv.weight.value.clone();
    let mut bias = match &conv.bias {
        Some(b) => b.value.clone(),
        None => Tensor::zeros([out_c]),
    };
    let kernel = in_c * kh * kw;
    for oc in 0..out_c {
        let sigma = (bn.running_var.at(oc) + bn.eps).sqrt();
        let scale = bn.gamma.value.at(oc) / sigma;
        for v in weight.data_mut()[oc * kernel..(oc + 1) * kernel].iter_mut() {
            *v *= scale;
        }
        let b = bias.at(oc);
        bias.data_mut()[oc] = scale * (b - bn.running_mean.at(oc)) + bn.beta.value.at(oc);
    }
    Ok(Conv2d::from_parts(weight, Some(bias), conv.geom)?)
}

/// Folds the batch-norms inside a residual block.
fn fold_residual(block: &ResidualBlock) -> Result<ResidualBlock> {
    let conv1 = match &block.bn1 {
        Some(bn) => fold_conv_bn(&block.conv1, bn)?,
        None => block.conv1.clone(),
    };
    let conv2 = match &block.bn2 {
        Some(bn) => fold_conv_bn(&block.conv2, bn)?,
        None => block.conv2.clone(),
    };
    let shortcut = match &block.shortcut {
        Shortcut::Identity => Shortcut::Identity,
        Shortcut::Projection { conv, bn } => Shortcut::Projection {
            conv: match bn {
                Some(bn) => fold_conv_bn(conv, bn)?,
                None => conv.clone(),
            },
            bn: None,
        },
    };
    Ok(ResidualBlock::from_parts(
        conv1,
        None,
        block.clip1.clone(),
        conv2,
        None,
        shortcut,
        block.clip_out.clone(),
    ))
}

/// Produces a copy of `net` with every batch normalization folded into its
/// preceding convolution (Eq. 7). Residual blocks are folded internally.
///
/// # Errors
///
/// Returns [`ConvertError::Unsupported`] if a batch-norm does not
/// immediately follow a convolution (the only placement the paper's models
/// use) or channel counts disagree.
///
/// # Examples
///
/// ```
/// use tcl_core::fold_batch_norm;
/// use tcl_models::{Architecture, ModelConfig};
/// use tcl_tensor::SeededRng;
///
/// let cfg = ModelConfig::new((3, 8, 8), 4).with_base_width(2);
/// let mut rng = SeededRng::new(0);
/// let net = Architecture::Cnn6.build(&cfg, &mut rng)?;
/// let folded = fold_batch_norm(&net)?;
/// assert!(folded.layers().iter().all(|l| l.kind_name() != "batchnorm2d"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fold_batch_norm(net: &Network) -> Result<Network> {
    let mut out: Vec<Layer> = Vec::with_capacity(net.len());
    for layer in net.layers() {
        match layer {
            Layer::BatchNorm2d(bn) => match out.pop() {
                Some(Layer::Conv2d(conv)) => {
                    out.push(Layer::Conv2d(fold_conv_bn(&conv, bn)?));
                }
                other => {
                    return Err(ConvertError::Unsupported {
                        detail: format!(
                            "batch-norm must follow a convolution, found after {}",
                            other.map_or("nothing", |l| l.kind_name())
                        ),
                    });
                }
            },
            Layer::Residual(block) => out.push(Layer::Residual(fold_residual(block)?)),
            other => out.push(other.clone()),
        }
    }
    Ok(Network::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcl_models::{Architecture, ModelConfig};
    use tcl_nn::Mode;
    use tcl_tensor::SeededRng;

    /// Trains BN statistics a little so folding is non-trivial.
    fn warm_up(net: &mut Network, rng: &mut SeededRng) {
        let x = rng.uniform_tensor([8, 3, 8, 8], -1.0, 1.0);
        for _ in 0..5 {
            net.forward(&x, Mode::Train).unwrap();
        }
    }

    #[test]
    fn folding_removes_all_batch_norms() {
        let mut rng = SeededRng::new(0);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_clip_lambda(Some(2.0));
        for arch in [
            Architecture::Cnn6,
            Architecture::Vgg16,
            Architecture::ResNet18,
        ] {
            let mut net = arch.build(&cfg, &mut rng).unwrap();
            warm_up(&mut net, &mut rng);
            let folded = fold_batch_norm(&net).unwrap();
            assert!(
                folded
                    .layers()
                    .iter()
                    .all(|l| l.kind_name() != "batchnorm2d"),
                "{arch}"
            );
            // Residual blocks must also be BN-free.
            for l in folded.layers() {
                if let Layer::Residual(b) = l {
                    assert!(b.bn1.is_none() && b.bn2.is_none());
                    if let Shortcut::Projection { bn, .. } = &b.shortcut {
                        assert!(bn.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn folding_preserves_eval_outputs() {
        let mut rng = SeededRng::new(1);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_clip_lambda(Some(2.0));
        for arch in [
            Architecture::Cnn6,
            Architecture::Vgg16,
            Architecture::ResNet20,
        ] {
            let mut net = arch.build(&cfg, &mut rng).unwrap();
            warm_up(&mut net, &mut rng);
            let x = rng.uniform_tensor([4, 3, 8, 8], -1.0, 1.0);
            let original = net.forward(&x, Mode::Eval).unwrap();
            let mut folded = fold_batch_norm(&net).unwrap();
            let after = folded.forward(&x, Mode::Eval).unwrap();
            let diff = original.max_abs_diff(&after).unwrap();
            assert!(diff < 1e-3, "{arch}: max diff {diff}");
        }
    }

    #[test]
    fn folding_without_bn_is_identity() {
        let mut rng = SeededRng::new(2);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_batch_norm(false);
        let mut net = Architecture::Cnn6.build(&cfg, &mut rng).unwrap();
        let x = rng.uniform_tensor([2, 3, 8, 8], -1.0, 1.0);
        let original = net.forward(&x, Mode::Eval).unwrap();
        let mut folded = fold_batch_norm(&net).unwrap();
        let after = folded.forward(&x, Mode::Eval).unwrap();
        assert_eq!(net.len(), folded.len());
        assert!(original.max_abs_diff(&after).unwrap() < 1e-6);
    }

    #[test]
    fn orphan_batch_norm_is_rejected() {
        let net = Network::new(vec![Layer::BatchNorm2d(BatchNorm2d::new(3).unwrap())]);
        assert!(matches!(
            fold_batch_norm(&net),
            Err(ConvertError::Unsupported { .. })
        ));
    }

    #[test]
    fn bn_after_relu_is_rejected() {
        use tcl_nn::layers::Relu;
        let net = Network::new(vec![
            Layer::Relu(Relu::new()),
            Layer::BatchNorm2d(BatchNorm2d::new(3).unwrap()),
        ]);
        let err = fold_batch_norm(&net).unwrap_err();
        assert!(err.to_string().contains("relu"));
    }
}
