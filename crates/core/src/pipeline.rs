//! End-to-end convenience pipeline: ANN accuracy + conversion + latency
//! sweep, packaged for the examples and the benchmark harnesses.

use crate::convert::{Conversion, Converter};
use crate::error::Result;
use serde::{Deserialize, Serialize};
use std::path::Path;
use tcl_nn::{
    evaluate as ann_evaluate, CheckpointConfig, Network, TrainConfig, TrainReport, Trainer,
};
use tcl_snn::{evaluate as snn_evaluate, Engine, EngineResult, ExitPolicy, SimConfig, SweepResult};
use tcl_tensor::Tensor;

/// Outcome of converting one trained ANN and sweeping its SNN over a
/// latency grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConversionReport {
    /// Test accuracy of the source ANN (evaluation mode).
    pub ann_accuracy: f32,
    /// SNN accuracy at each latency checkpoint plus spike activity.
    pub sweep: SweepResult,
    /// Resolved norm-factors (one per activation site; last is the output
    /// site).
    pub lambdas: Vec<f32>,
    /// Human-readable name of the norm strategy used.
    pub strategy_name: String,
}

impl ConversionReport {
    /// The SNN-vs-ANN accuracy gap at latency `t` (positive = SNN worse),
    /// if `t` was a checkpoint.
    pub fn gap_at(&self, t: usize) -> Option<f32> {
        self.sweep.accuracy_at(t).map(|a| self.ann_accuracy - a)
    }
}

/// Trains the ANN leg of the pipeline with crash-safe checkpointing.
///
/// Training is by far the most expensive stage of train → convert →
/// simulate, so this is the stage that must survive interruption. When
/// `checkpoint_dir` is given, full training state (parameters, momentum,
/// RNG streams, epoch cursor) is snapshotted every `TCL_CKPT_EVERY` epochs
/// (default 5) and an interrupted run transparently resumes **bit-exactly**
/// from the newest valid snapshot — a corrupted newest snapshot falls back
/// to the previous one. With `checkpoint_dir = None` this is plain
/// [`tcl_nn::train`].
///
/// # Errors
///
/// Propagates training and checkpoint errors (including a refusal to
/// resume when the snapshot was written with different hyper-parameters).
pub fn train_resumable(
    net: &mut Network,
    inputs: &Tensor,
    labels: &[usize],
    eval: Option<(&Tensor, &[usize])>,
    config: &TrainConfig,
    checkpoint_dir: Option<&Path>,
) -> Result<TrainReport> {
    let _span =
        tcl_telemetry::span_with("pipeline.train", || vec![("epochs", config.epochs as f64)]);
    let mut trainer = Trainer::new(config.clone());
    if let Some(dir) = checkpoint_dir {
        trainer = trainer.with_checkpoints(CheckpointConfig::new(dir));
    }
    Ok(trainer.run_resumable(net, inputs, labels, eval)?)
}

/// Converts `net` with `converter` and evaluates both the ANN and the SNN
/// on `(test_images, test_labels)`, using `calibration` for activation
/// statistics.
///
/// # Errors
///
/// Propagates conversion, evaluation, and shape errors.
///
/// # Examples
///
/// ```
/// use tcl_core::{convert_and_evaluate, Converter, NormStrategy};
/// use tcl_models::{Architecture, ModelConfig};
/// use tcl_snn::{Readout, SimConfig};
/// use tcl_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let cfg = ModelConfig::new((3, 8, 8), 4)
///     .with_base_width(2)
///     .with_clip_lambda(Some(2.0));
/// let mut net = Architecture::Cnn6.build(&cfg, &mut rng)?;
/// let images = rng.uniform_tensor([8, 3, 8, 8], -1.0, 1.0);
/// let labels = vec![0, 1, 2, 3, 0, 1, 2, 3];
/// let sim = SimConfig::new(vec![10], 4, Readout::SpikeCount)?;
/// let report = convert_and_evaluate(
///     &mut net,
///     &images,
///     &images,
///     &labels,
///     &Converter::new(NormStrategy::TrainedClip),
///     &sim,
/// )?;
/// assert_eq!(report.sweep.accuracies.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn convert_and_evaluate(
    net: &mut Network,
    calibration: &Tensor,
    test_images: &Tensor,
    test_labels: &[usize],
    converter: &Converter,
    sim: &SimConfig,
) -> Result<ConversionReport> {
    let _span = tcl_telemetry::span_with("pipeline.convert_eval", || {
        vec![("samples", test_labels.len() as f64)]
    });
    let ann_accuracy = ann_evaluate(net, test_images, test_labels, sim.batch_size)?;
    let Conversion { snn, lambdas, .. } = converter.convert(net, calibration)?;
    let sweep = snn_evaluate(&snn, test_images, test_labels, sim)?;
    if tcl_telemetry::metrics_enabled() {
        tcl_telemetry::gauge_set("pipeline.ann_accuracy", f64::from(ann_accuracy));
        if let Some(&(_, acc)) = sweep.accuracies.last() {
            tcl_telemetry::gauge_set("pipeline.snn_accuracy", f64::from(acc));
        }
    }
    Ok(ConversionReport {
        ann_accuracy,
        sweep,
        lambdas,
        strategy_name: converter.strategy.name(),
    })
}

/// Like [`ConversionReport`], but produced by the persistent inference
/// engine, so it additionally carries the per-sample early-exit diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineReport {
    /// Test accuracy of the source ANN (evaluation mode).
    pub ann_accuracy: f32,
    /// Engine evaluation: checkpoint sweep plus exit steps, anytime
    /// accuracy, and the margin trajectory.
    pub result: EngineResult,
    /// Resolved norm-factors (one per activation site; last is the output
    /// site).
    pub lambdas: Vec<f32>,
    /// Human-readable name of the norm strategy used.
    pub strategy_name: String,
}

/// [`convert_and_evaluate`] on a caller-provided [`Engine`], under an
/// explicit [`ExitPolicy`]. The engine's worker pool and cached replicas
/// survive across calls, which is what the benchmark drivers want when they
/// sweep many strategies over the same data; `ExitPolicy::Adaptive` turns on
/// per-sample early exit.
///
/// # Errors
///
/// Propagates conversion, evaluation, and shape errors.
#[allow(clippy::too_many_arguments)] // one argument per pipeline stage
pub fn convert_and_evaluate_with(
    engine: &mut Engine,
    net: &mut Network,
    calibration: &Tensor,
    test_images: &Tensor,
    test_labels: &[usize],
    converter: &Converter,
    sim: &SimConfig,
    policy: ExitPolicy,
) -> Result<EngineReport> {
    let _span = tcl_telemetry::span_with("pipeline.convert_eval", || {
        vec![("samples", test_labels.len() as f64)]
    });
    let ann_accuracy = ann_evaluate(net, test_images, test_labels, sim.batch_size)?;
    let Conversion { snn, lambdas, .. } = converter.convert(net, calibration)?;
    let result = engine.evaluate(&snn, test_images, test_labels, sim, policy)?;
    if tcl_telemetry::metrics_enabled() {
        tcl_telemetry::gauge_set("pipeline.ann_accuracy", f64::from(ann_accuracy));
        if let Some(&(_, acc)) = result.sweep.accuracies.last() {
            tcl_telemetry::gauge_set("pipeline.snn_accuracy", f64::from(acc));
        }
    }
    Ok(EngineReport {
        ann_accuracy,
        result,
        lambdas,
        strategy_name: converter.strategy.name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::NormStrategy;
    use tcl_models::{Architecture, ModelConfig};
    use tcl_snn::Readout;
    use tcl_tensor::SeededRng;

    #[test]
    fn report_exposes_gap() {
        let mut rng = SeededRng::new(0);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_clip_lambda(Some(2.0));
        let mut net = Architecture::Cnn6.build(&cfg, &mut rng).unwrap();
        let images = rng.uniform_tensor([8, 3, 8, 8], -1.0, 1.0);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let sim = SimConfig::new(vec![5, 20], 4, Readout::SpikeCount).unwrap();
        let report = convert_and_evaluate(
            &mut net,
            &images,
            &images,
            &labels,
            &Converter::new(NormStrategy::TrainedClip),
            &sim,
        )
        .unwrap();
        assert!(report.gap_at(5).is_some());
        assert!(report.gap_at(7).is_none());
        assert_eq!(report.strategy_name, "tcl");
        assert_eq!(report.lambdas.len(), 6);
    }

    #[test]
    fn engine_pipeline_matches_one_shot_pipeline_with_exit_off() {
        let mut rng = SeededRng::new(0);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_clip_lambda(Some(2.0));
        let mut net = Architecture::Cnn6.build(&cfg, &mut rng).unwrap();
        let images = rng.uniform_tensor([8, 3, 8, 8], -1.0, 1.0);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let sim = SimConfig::new(vec![5, 20], 4, Readout::SpikeCount).unwrap();
        let converter = Converter::new(NormStrategy::TrainedClip);
        let reference =
            convert_and_evaluate(&mut net, &images, &images, &labels, &converter, &sim).unwrap();
        let mut engine = Engine::with_threads(2);
        let report = convert_and_evaluate_with(
            &mut engine,
            &mut net,
            &images,
            &images,
            &labels,
            &converter,
            &sim,
            ExitPolicy::Off,
        )
        .unwrap();
        assert_eq!(report.ann_accuracy, reference.ann_accuracy);
        assert_eq!(report.result.sweep.accuracies, reference.sweep.accuracies);
        assert_eq!(
            report.result.sweep.total_spikes,
            reference.sweep.total_spikes
        );
        assert_eq!(report.lambdas, reference.lambdas);
        assert_eq!(report.result.saved_steps, 0);
    }
}
