//! Per-layer conversion diagnostics.
//!
//! A converted SNN is *supposed* to rate-code `min(a, λ)/λ` at every
//! activation site (Section 3.1 of the paper): after enough timesteps, the
//! firing rate of IF bank `i` converges to the clipped-and-normalized ANN
//! activation at site `i`. [`diagnose_conversion`] measures how true that is
//! layer by layer:
//!
//! * **λ** — the resolved norm-factor for the site;
//! * **clip rate** — the fraction of ANN activations at or above λ, i.e. the
//!   signal mass the conversion throws away (large for tight TCL bounds on
//!   wide distributions, ~0 for max-norm);
//! * **ANN rate** — the expected steady-state firing rate
//!   `mean(min(a, λ))/λ` over the stimulus;
//! * **SNN rate** — the observed rate (cumulative spikes per neuron per
//!   timestep) at each requested timestep window;
//! * **residual** — `|SNN rate − ANN rate|`, the rate-coding error. It
//!   shrinks roughly as `1/T`: the transient "spike wavefront" and the
//!   quantization of rates to multiples of `1/T` both wash out with longer
//!   simulation.
//!
//! The site ↔ bank pairing relies on [`tcl_snn::SpikingNetwork::spikes_per_bank`]
//! flattening IF banks in node order (residual blocks contribute NS then OS),
//! which is exactly the converter's activation-site walk order.
//!
//! Reports serialize to JSONL (one header line plus one line per site) via
//! [`ConversionDiagnostics::to_jsonl`], the format the bench harnesses write
//! to `results/diagnostics_*.jsonl`.

use crate::convert::Conversion;
use crate::error::{ConvertError, Result};
use crate::fold::fold_batch_norm;
use crate::stats::{count_sites, walk_sites};
use tcl_nn::Network;
use tcl_telemetry::json::{escape_into, number_into};
use tcl_tensor::Tensor;

/// Diagnostics for one activation site / IF-bank pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteDiagnostic {
    /// Site index in conversion walk order (the last site is the output).
    pub site: usize,
    /// Resolved norm-factor λ for this site.
    pub lambda: f32,
    /// Fraction of ANN activations at or above λ (signal mass clipped away).
    pub clip_rate: f32,
    /// Expected steady-state firing rate `mean(min(a, λ))/λ`.
    pub ann_rate: f32,
    /// Observed SNN firing rate at each window: cumulative spikes divided by
    /// neurons × timesteps. Parallel to [`ConversionDiagnostics::windows`].
    pub snn_rates: Vec<f32>,
    /// `|snn_rate − ann_rate|` per window.
    pub residuals: Vec<f32>,
}

/// The full per-layer report produced by [`diagnose_conversion`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConversionDiagnostics {
    /// Norm-factor strategy name (for labeling artifacts).
    pub strategy: String,
    /// Timestep windows, ascending and deduplicated.
    pub windows: Vec<usize>,
    /// One entry per activation site, in walk order.
    pub sites: Vec<SiteDiagnostic>,
}

impl ConversionDiagnostics {
    /// Mean rate-coding residual across all sites at window index `w`, or
    /// `None` if `w` is out of range or there are no sites.
    pub fn mean_residual(&self, w: usize) -> Option<f32> {
        if w >= self.windows.len() || self.sites.is_empty() {
            return None;
        }
        Some(self.sites.iter().map(|s| s.residuals[w]).sum::<f32>() / self.sites.len() as f32)
    }

    /// Largest rate-coding residual across all sites at window index `w`.
    pub fn max_residual(&self, w: usize) -> Option<f32> {
        if w >= self.windows.len() {
            return None;
        }
        self.sites
            .iter()
            .map(|s| s.residuals[w])
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f32| a.max(r))))
    }

    /// Serializes the report as JSONL: a header line
    /// (`"type":"diagnostics_header"`) followed by one
    /// (`"type":"site_diagnostic"`) line per site.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"type\":\"diagnostics_header\",\"strategy\":\"");
        escape_into(&self.strategy, &mut out);
        out.push_str("\",\"sites\":");
        out.push_str(&self.sites.len().to_string());
        out.push_str(",\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&w.to_string());
        }
        out.push_str("]}\n");
        for s in &self.sites {
            out.push_str("{\"type\":\"site_diagnostic\",\"site\":");
            out.push_str(&s.site.to_string());
            out.push_str(",\"lambda\":");
            number_into(f64::from(s.lambda), &mut out);
            out.push_str(",\"clip_rate\":");
            number_into(f64::from(s.clip_rate), &mut out);
            out.push_str(",\"ann_rate\":");
            number_into(f64::from(s.ann_rate), &mut out);
            push_f32_array(",\"snn_rate\":[", &s.snn_rates, &mut out);
            push_f32_array(",\"residual\":[", &s.residuals, &mut out);
            out.push_str("}\n");
        }
        out
    }

    /// Writes [`ConversionDiagnostics::to_jsonl`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_jsonl<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// A human-readable per-site table (one line per site).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "== conversion diagnostics ({}, windows {:?}) ==\n\
             site     lambda  clip%   ann-rate  snn-rate@last  residual@last\n",
            self.strategy, self.windows
        );
        for s in &self.sites {
            let last_rate = s.snn_rates.last().copied().unwrap_or(0.0);
            let last_res = s.residuals.last().copied().unwrap_or(0.0);
            out.push_str(&format!(
                "{:4}  {:9.4}  {:5.2}  {:9.4}  {:13.4}  {:13.4}\n",
                s.site,
                s.lambda,
                s.clip_rate * 100.0,
                s.ann_rate,
                last_rate,
                last_res,
            ));
        }
        out
    }
}

fn push_f32_array(prefix: &str, values: &[f32], out: &mut String) {
    out.push_str(prefix);
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        number_into(f64::from(v), out);
    }
    out.push(']');
}

/// Measures the per-layer rate-coding fidelity of a conversion.
///
/// Runs `stimulus` through the BN-folded `ann` to collect per-site clip
/// rates and expected rates, then simulates `conversion.snn` for
/// `max(windows)` timesteps (from reset, on a clone — the passed conversion
/// is untouched), sampling cumulative per-bank spike counts at each window
/// boundary.
///
/// `stimulus` may be a batch; rates are averaged over all elements on both
/// sides identically.
///
/// # Errors
///
/// Returns a calibration error when `windows` is empty or contains zero,
/// when the network's site count does not match `conversion.lambdas` (e.g. a
/// conversion made from a *different* network), and propagates forward-pass
/// and simulation shape errors.
pub fn diagnose_conversion(
    ann: &Network,
    conversion: &Conversion,
    stimulus: &Tensor,
    windows: &[usize],
) -> Result<ConversionDiagnostics> {
    let _span = tcl_telemetry::span_with("diagnose", || {
        vec![
            ("sites", conversion.lambdas.len() as f64),
            ("windows", windows.len() as f64),
        ]
    });
    if windows.is_empty() {
        return Err(ConvertError::Calibration {
            detail: "diagnostics need at least one timestep window".into(),
        });
    }
    if windows.contains(&0) {
        return Err(ConvertError::Calibration {
            detail: "diagnostic windows must be nonzero".into(),
        });
    }
    let mut windows: Vec<usize> = windows.to_vec();
    windows.sort_unstable();
    windows.dedup();

    let sites = conversion.lambdas.len();
    let expected = count_sites(ann);
    if expected != sites {
        return Err(ConvertError::Calibration {
            detail: format!(
                "network has {expected} activation sites but the conversion \
                 resolved {sites} norm-factors — diagnostics need the same \
                 network the conversion came from"
            ),
        });
    }

    // ANN side: clip rate and expected firing rate per site.
    let mut folded = fold_batch_norm(ann)?;
    let mut count = vec![0u64; sites];
    let mut clipped = vec![0u64; sites];
    let mut sum_clipped = vec![0f64; sites];
    walk_sites(&mut folded, stimulus, &mut |site, values| {
        if site >= sites {
            return;
        }
        let lam = conversion.lambdas[site];
        let clip_threshold = lam * (1.0 - 1e-6);
        for &v in values.data() {
            count[site] += 1;
            if v >= clip_threshold {
                clipped[site] += 1;
            }
            sum_clipped[site] += f64::from(v.min(lam));
        }
    })?;

    // SNN side: cumulative per-bank spikes at each window boundary.
    let mut snn = conversion.snn.clone();
    snn.reset();
    // lint: allow(P1) windows is validated non-empty at function entry
    let max_t = *windows.last().expect("windows checked nonempty");
    let mut cumulative: Vec<Vec<u64>> = Vec::with_capacity(windows.len());
    let mut neurons: Vec<usize> = Vec::new();
    let mut next_window = 0usize;
    for t in 1..=max_t {
        snn.step(stimulus)?;
        if t == windows[next_window] {
            cumulative.push(snn.spikes_per_bank());
            if neurons.is_empty() {
                neurons = snn.neurons_per_bank();
            }
            next_window += 1;
        }
    }
    if neurons.len() != sites {
        return Err(ConvertError::Calibration {
            detail: format!(
                "spiking network has {} IF banks but the conversion resolved \
                 {sites} norm-factors",
                neurons.len()
            ),
        });
    }

    let mut report_sites = Vec::with_capacity(sites);
    for s in 0..sites {
        let lam = conversion.lambdas[s];
        let n = count[s] as f64;
        let ann_rate = if n > 0.0 && lam > 0.0 {
            (sum_clipped[s] / n / f64::from(lam)) as f32
        } else {
            0.0
        };
        let clip_rate = if n > 0.0 {
            (clipped[s] as f64 / n) as f32
        } else {
            0.0
        };
        let mut snn_rates = Vec::with_capacity(windows.len());
        let mut residuals = Vec::with_capacity(windows.len());
        for (w, &t) in windows.iter().enumerate() {
            let denom = (neurons[s] * t) as f32;
            let rate = if denom > 0.0 {
                cumulative[w][s] as f32 / denom
            } else {
                0.0
            };
            snn_rates.push(rate);
            residuals.push((rate - ann_rate).abs());
        }
        if tcl_telemetry::metrics_enabled() {
            let last = residuals.last().copied().unwrap_or(0.0);
            tcl_telemetry::gauge_set_indexed("diag.residual", s, f64::from(last));
            tcl_telemetry::gauge_set_indexed("diag.clip_rate", s, f64::from(clip_rate));
        }
        report_sites.push(SiteDiagnostic {
            site: s,
            lambda: lam,
            clip_rate,
            ann_rate,
            snn_rates,
            residuals,
        });
    }
    Ok(ConversionDiagnostics {
        strategy: conversion.strategy.name(),
        windows,
        sites: report_sites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{Converter, NormStrategy};
    use tcl_models::{Architecture, ModelConfig};
    use tcl_tensor::SeededRng;

    fn converted() -> (Network, Conversion, Tensor) {
        let mut rng = SeededRng::new(21);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_clip_lambda(Some(2.0));
        let net = Architecture::Cnn6.build(&cfg, &mut rng).unwrap();
        let calibration = rng.uniform_tensor([12, 3, 8, 8], -1.0, 1.0);
        let conversion = Converter::new(NormStrategy::TrainedClip)
            .convert(&net, &calibration)
            .unwrap();
        let stimulus = rng.uniform_tensor([2, 3, 8, 8], -1.0, 1.0);
        (net, conversion, stimulus)
    }

    #[test]
    fn report_covers_every_site_and_window() {
        let (net, conversion, stimulus) = converted();
        let d = diagnose_conversion(&net, &conversion, &stimulus, &[8, 4, 8]).unwrap();
        assert_eq!(d.windows, vec![4, 8]); // sorted + deduped
        assert_eq!(d.sites.len(), 6);
        for (i, s) in d.sites.iter().enumerate() {
            assert_eq!(s.site, i);
            assert_eq!(s.snn_rates.len(), 2);
            assert_eq!(s.residuals.len(), 2);
            assert!((0.0..=1.0).contains(&s.clip_rate));
            assert!(s.ann_rate >= 0.0);
            assert!((s.lambda - conversion.lambdas[i]).abs() < 1e-6);
        }
        assert!(d.mean_residual(1).is_some());
        assert!(d.max_residual(2).is_none());
        assert_eq!(d.strategy, "tcl");
    }

    #[test]
    fn bad_windows_are_rejected() {
        let (net, conversion, stimulus) = converted();
        assert!(diagnose_conversion(&net, &conversion, &stimulus, &[]).is_err());
        assert!(diagnose_conversion(&net, &conversion, &stimulus, &[8, 0]).is_err());
    }

    #[test]
    fn mismatched_network_is_rejected() {
        let (_, conversion, stimulus) = converted();
        let mut rng = SeededRng::new(22);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_clip_lambda(Some(2.0));
        let other = Architecture::ResNet20.build(&cfg, &mut rng).unwrap();
        let err = diagnose_conversion(&other, &conversion, &stimulus, &[4]).unwrap_err();
        assert!(matches!(err, ConvertError::Calibration { .. }), "{err}");
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let (net, conversion, stimulus) = converted();
        let d = diagnose_conversion(&net, &conversion, &stimulus, &[4, 16]).unwrap();
        let jsonl = d.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1 + d.sites.len());
        for line in &lines {
            tcl_telemetry::json::validate_line(line).expect("invalid JSONL line");
        }
        assert!(lines[0].contains("\"type\":\"diagnostics_header\""));
        assert!(lines[0].contains("\"strategy\":\"tcl\""));
        assert!(lines[1].contains("\"type\":\"site_diagnostic\""));
        // Summary renders one row per site.
        assert_eq!(d.summary().lines().count(), 2 + d.sites.len());
    }

    #[test]
    fn diagnostics_emit_residual_gauges_when_metrics_on() {
        let (net, conversion, stimulus) = converted();
        let ((), lines) = tcl_telemetry::test_support::with_captured(|| {
            tcl_telemetry::test_support::reset_metrics();
            diagnose_conversion(&net, &conversion, &stimulus, &[4]).unwrap();
            tcl_telemetry::write_metrics_snapshot();
        });
        assert!(
            lines.iter().any(|l| l.contains("diag.residual[0]")),
            "no residual gauge in {lines:?}"
        );
    }
}
