//! The Sengupta et al. 2019 "SpikeNorm" baseline: sequential threshold
//! balancing driven by *spiking* statistics.
//!
//! Where Diehl/Rueckauer-style data-normalization scales weights from ANN
//! activation statistics, SpikeNorm leaves weights untouched and assigns
//! each layer's firing threshold from the maximum *synaptic current* the
//! layer receives while the network (with all earlier thresholds already
//! balanced) runs on calibration inputs. Because the statistics are
//! gathered from actual spike trains, the method accounts for conversion
//! artifacts layer by layer — at the cost of a sequential calibration
//! simulation that is quadratic in network depth.
//!
//! The paper's Table 1 carries Sengupta et al. rows as the
//! high-latency/high-accuracy baseline family; this module lets the same
//! harnesses produce those rows via [`crate::NormStrategy::SpikeNorm`].

use crate::error::{ConvertError, Result};
use crate::fold::fold_batch_norm;
use tcl_nn::layers::Shortcut;
use tcl_nn::{Layer, Network};
use tcl_snn::{
    IfNeurons, ResetMode, SpikingLayer, SpikingNetwork, SpikingNode, SpikingResidual, SynapticOp,
};
use tcl_tensor::ops::ConvGeometry;
use tcl_tensor::{Shape, Tensor};

/// Which neuron bank of a node is being balanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bank {
    Main,
    ResidualNs,
    ResidualOs,
}

/// Emits an *unnormalized* spiking network (weights and biases copied
/// verbatim from the folded ANN; thresholds start at 1).
fn emit_unnormalized(folded: &Network, reset: ResetMode) -> Result<Vec<SpikingNode>> {
    let layers = folded.layers();
    let mut nodes = Vec::new();
    let mut i = 0usize;
    while i < layers.len() {
        match &layers[i] {
            Layer::Conv2d(conv) => {
                nodes.push(SpikingNode::Spiking(SpikingLayer::new(
                    SynapticOp::Conv {
                        weight: conv.weight.value.clone(),
                        bias: conv.bias.as_ref().map(|b| b.value.clone()),
                        geom: conv.geom,
                    },
                    IfNeurons::new(1.0, reset),
                )));
                while matches!(
                    layers.get(i + 1),
                    Some(Layer::Relu(_)) | Some(Layer::Clip(_))
                ) {
                    i += 1;
                }
            }
            Layer::Linear(linear) => {
                nodes.push(SpikingNode::Spiking(SpikingLayer::new(
                    SynapticOp::Linear {
                        weight: linear.weight.value.clone(),
                        bias: linear.bias.as_ref().map(|b| b.value.clone()),
                    },
                    IfNeurons::new(1.0, reset),
                )));
                while matches!(
                    layers.get(i + 1),
                    Some(Layer::Relu(_)) | Some(Layer::Clip(_))
                ) {
                    i += 1;
                }
            }
            Layer::Residual(block) => {
                let c2_bias = block
                    .conv2
                    .bias
                    .as_ref()
                    .map(|b| b.value.clone())
                    .unwrap_or_else(|| Tensor::zeros([block.conv2.out_channels()]));
                let (sh_weight, sh_geom, sh_bias) = match &block.shortcut {
                    Shortcut::Projection { conv, .. } => (
                        conv.weight.value.clone(),
                        conv.geom,
                        conv.bias
                            .as_ref()
                            .map(|b| b.value.clone())
                            .unwrap_or_else(|| Tensor::zeros([conv.out_channels()])),
                    ),
                    Shortcut::Identity => {
                        let c = block.conv2.out_channels();
                        let mut w = Tensor::zeros([c, c, 1, 1]);
                        for ch in 0..c {
                            w.data_mut()[ch * c + ch] = 1.0;
                        }
                        (w, ConvGeometry::square(1, 1, 0)?, Tensor::zeros([c]))
                    }
                };
                nodes.push(SpikingNode::Residual(SpikingResidual {
                    ns_op: SynapticOp::Conv {
                        weight: block.conv1.weight.value.clone(),
                        bias: block.conv1.bias.as_ref().map(|b| b.value.clone()),
                        geom: block.conv1.geom,
                    },
                    ns_neurons: IfNeurons::new(1.0, reset),
                    os_main: SynapticOp::Conv {
                        weight: block.conv2.weight.value.clone(),
                        bias: Some(c2_bias.add(&sh_bias)?),
                        geom: block.conv2.geom,
                    },
                    os_shortcut: SynapticOp::Conv {
                        weight: sh_weight,
                        bias: None,
                        geom: sh_geom,
                    },
                    os_neurons: IfNeurons::new(1.0, reset),
                }));
            }
            Layer::AvgPool2d(p) => nodes.push(SpikingNode::AvgPool {
                kernel: p.kernel,
                stride: p.stride,
            }),
            Layer::GlobalAvgPool(_) => nodes.push(SpikingNode::GlobalAvgPool),
            Layer::Flatten(_) => nodes.push(SpikingNode::Flatten),
            Layer::Dropout(_) => {} // identity at inference: emit nothing
            Layer::Relu(_) | Layer::Clip(_) => {
                return Err(ConvertError::Unsupported {
                    detail: format!("activation at layer {i} is not preceded by a weighted layer"),
                })
            }
            Layer::BatchNorm2d(_) => unreachable!("batch-norm was folded"),
            Layer::MaxPool2d(_) => {
                return Err(ConvertError::Unsupported {
                    detail: "max pooling has no spiking implementation".into(),
                })
            }
        }
        i += 1;
    }
    Ok(nodes)
}

/// Resets nodes `0..=k`.
fn reset_prefix(nodes: &mut [SpikingNode], k: usize) {
    for node in nodes.iter_mut().take(k + 1) {
        node.reset();
    }
}

/// Steps nodes `0..k` on `input`, returning the spikes entering node `k`.
fn step_prefix(nodes: &mut [SpikingNode], k: usize, input: &Tensor) -> Result<Tensor> {
    let mut x = input.clone();
    for node in nodes.iter_mut().take(k) {
        x = node.step(&x)?;
    }
    Ok(x)
}

/// Maximum element of a tensor, floored at zero.
fn max_positive(t: &Tensor) -> f32 {
    t.data().iter().copied().fold(0.0, f32::max)
}

/// Measures the peak input current into one bank of node `k` over a
/// calibration presentation and returns it.
fn measure_bank(
    nodes: &mut [SpikingNode],
    k: usize,
    bank: Bank,
    batch: &Tensor,
    timesteps: usize,
) -> Result<f32> {
    reset_prefix(nodes, k);
    let mut peak = 0.0f32;
    for _ in 0..timesteps {
        let x = step_prefix(nodes, k, batch)?;
        // Split borrows: node k is examined after the prefix was stepped.
        match (&mut nodes[k], bank) {
            (SpikingNode::Spiking(layer), Bank::Main) => {
                let current = layer.op.apply(&x)?;
                peak = peak.max(max_positive(&current));
                // The bank itself need not fire for its own balancing.
            }
            (SpikingNode::Residual(block), Bank::ResidualNs) => {
                let current = block.ns_op.apply(&x)?;
                peak = peak.max(max_positive(&current));
            }
            (SpikingNode::Residual(block), Bank::ResidualOs) => {
                // NS threshold is already balanced; run the NS bank to get
                // realistic NS spike trains.
                let ns_current = block.ns_op.apply(&x)?;
                let ns_spikes = block.ns_neurons.step(&ns_current)?;
                let mut os_current = block.os_main.apply(&ns_spikes)?;
                os_current.add_assign(&block.os_shortcut.apply(&x)?)?;
                peak = peak.max(max_positive(&os_current));
            }
            _ => {
                return Err(ConvertError::Calibration {
                    detail: format!("node {k} has no bank to balance"),
                })
            }
        }
    }
    Ok(peak)
}

/// Scales the bias of one operator in place (biases must be divided by the
/// cumulative threshold product of the preceding layers — the
/// threshold-balancing analogue of Eq. 5's `b̂ = b/λ`. Without this the
/// bias current is injected at full scale every timestep while the spike
/// traffic is scaled down, which is exactly the bias-amplification problem
/// Section 3.1 of the paper describes for bias-free conversion schemes).
fn scale_bias(op: &mut SynapticOp, factor: f32) {
    match op {
        SynapticOp::Conv { bias, .. } | SynapticOp::Linear { bias, .. } => {
            if let Some(b) = bias {
                b.scale_inplace(factor);
            }
        }
    }
}

/// Sets the threshold of one bank of node `k`.
fn set_threshold(
    nodes: &mut [SpikingNode],
    k: usize,
    bank: Bank,
    threshold: f32,
    reset: ResetMode,
) {
    let thr = if threshold > 1e-6 { threshold } else { 1.0 };
    match (&mut nodes[k], bank) {
        (SpikingNode::Spiking(layer), Bank::Main) => {
            layer.neurons = IfNeurons::new(thr, reset);
        }
        (SpikingNode::Residual(block), Bank::ResidualNs) => {
            block.ns_neurons = IfNeurons::new(thr, reset);
        }
        (SpikingNode::Residual(block), Bank::ResidualOs) => {
            block.os_neurons = IfNeurons::new(thr, reset);
        }
        _ => unreachable!("bank validated during measurement"),
    }
}

/// Converts a trained ANN with SpikeNorm threshold balancing.
///
/// Returns the spiking network plus the balanced thresholds in bank order
/// (NS before OS for residual nodes).
///
/// # Errors
///
/// As for [`crate::Converter::convert`]; additionally requires
/// `timesteps > 0`.
pub(crate) fn convert_spike_norm(
    net: &Network,
    calibration: &Tensor,
    timesteps: usize,
    calibration_batch: usize,
    reset: ResetMode,
) -> Result<(SpikingNetwork, Vec<f32>)> {
    if timesteps == 0 {
        return Err(ConvertError::Calibration {
            detail: "spike-norm needs at least one balancing timestep".into(),
        });
    }
    let n = calibration.dims().first().copied().unwrap_or(0);
    if n == 0 {
        return Err(ConvertError::Calibration {
            detail: "calibration set is empty".into(),
        });
    }
    let folded = fold_batch_norm(net)?;
    let mut nodes = emit_unnormalized(&folded, reset)?;
    let row = calibration.len() / n;
    let batch_n = calibration_batch.clamp(1, n);
    let mut bdims = calibration.dims().to_vec();
    bdims[0] = batch_n;
    let batch = Tensor::from_vec(
        Shape::new(bdims),
        calibration.data()[..batch_n * row].to_vec(),
    )?;
    let mut thresholds = Vec::new();
    // Cumulative product of balanced thresholds along the main path: the
    // incoming spike rates are scaled by 1/cum, so each bank's bias must be
    // scaled likewise before its threshold is measured.
    let mut cum = 1.0f32;
    for k in 0..nodes.len() {
        let banks: &[Bank] = match &nodes[k] {
            SpikingNode::Spiking(_) => &[Bank::Main],
            SpikingNode::Residual(_) => &[Bank::ResidualNs, Bank::ResidualOs],
            _ => &[],
        };
        for &bank in banks {
            match (&mut nodes[k], bank) {
                (SpikingNode::Spiking(layer), Bank::Main) => scale_bias(&mut layer.op, 1.0 / cum),
                (SpikingNode::Residual(block), Bank::ResidualNs) => {
                    scale_bias(&mut block.ns_op, 1.0 / cum)
                }
                (SpikingNode::Residual(block), Bank::ResidualOs) => {
                    // Main-path convention; the identity path's different
                    // cumulative scale is an inherent limitation of
                    // threshold balancing on residual nets (the paper's
                    // Section 5 algebra exists precisely to fix this).
                    scale_bias(&mut block.os_main, 1.0 / cum)
                }
                _ => unreachable!("banks listed only for weighted nodes"),
            }
            let peak = measure_bank(&mut nodes, k, bank, &batch, timesteps)?;
            set_threshold(&mut nodes, k, bank, peak, reset);
            let thr = if peak > 1e-6 { peak } else { 1.0 };
            thresholds.push(thr);
            cum *= thr;
        }
    }
    let mut snn = SpikingNetwork::new(nodes);
    snn.reset();
    Ok((snn, thresholds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{Converter, NormStrategy};
    use tcl_models::{Architecture, ModelConfig};
    use tcl_snn::{evaluate, Readout, SimConfig};
    use tcl_tensor::SeededRng;

    fn small_net(seed: u64) -> Network {
        let mut rng = SeededRng::new(seed);
        let cfg = ModelConfig::new((3, 8, 8), 4).with_base_width(2);
        Architecture::Cnn6.build(&cfg, &mut rng).unwrap()
    }

    #[test]
    fn spike_norm_assigns_positive_thresholds() {
        let net = small_net(0);
        let mut rng = SeededRng::new(1);
        let calibration = rng.uniform_tensor([8, 3, 8, 8], -1.0, 1.0);
        let (snn, thresholds) =
            convert_spike_norm(&net, &calibration, 20, 8, ResetMode::Subtract).unwrap();
        assert!(!thresholds.is_empty());
        assert!(thresholds.iter().all(|&t| t > 0.0));
        assert_eq!(
            snn.nodes()
                .iter()
                .filter(|n| matches!(n, SpikingNode::Spiking(_) | SpikingNode::Residual(_)))
                .count(),
            thresholds.len()
        );
    }

    #[test]
    fn via_converter_strategy() {
        let net = small_net(2);
        let mut rng = SeededRng::new(3);
        let calibration = rng.uniform_tensor([8, 3, 8, 8], -1.0, 1.0);
        let conversion = Converter::new(NormStrategy::SpikeNorm)
            .convert(&net, &calibration)
            .unwrap();
        assert!(conversion.lambdas.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn spike_norm_snn_classifies_like_the_ann_at_long_latency() {
        use tcl_nn::Mode;
        let net = small_net(4);
        let mut rng = SeededRng::new(5);
        let calibration = rng.uniform_tensor([12, 3, 8, 8], -1.0, 1.0);
        let x = rng.uniform_tensor([6, 3, 8, 8], -1.0, 1.0);
        let mut ann = net.clone();
        let logits = ann.forward(&x, Mode::Eval).unwrap();
        let preds = tcl_tensor::ops::argmax_rows(&logits).unwrap();
        let conversion = Converter::new(NormStrategy::SpikeNorm)
            .convert(&net, &calibration)
            .unwrap();
        let cfg = SimConfig::new(vec![500], 6, Readout::Membrane).unwrap();
        let sweep = evaluate(&conversion.snn.clone(), &x, &preds, &cfg).unwrap();
        assert!(
            sweep.final_accuracy() >= 0.6,
            "spike-norm SNN should largely agree with the ANN, got {}",
            sweep.final_accuracy()
        );
    }

    #[test]
    fn zero_timesteps_is_rejected() {
        let net = small_net(6);
        let calibration = Tensor::zeros([2, 3, 8, 8]);
        assert!(convert_spike_norm(&net, &calibration, 0, 2, ResetMode::Subtract).is_err());
    }

    #[test]
    fn residual_networks_get_two_thresholds_per_block() {
        let mut rng = SeededRng::new(7);
        let cfg = ModelConfig::new((3, 8, 8), 4).with_base_width(2);
        let net = Architecture::ResNet20.build(&cfg, &mut rng).unwrap();
        let calibration = rng.uniform_tensor([4, 3, 8, 8], -1.0, 1.0);
        let (_, thresholds) =
            convert_spike_norm(&net, &calibration, 10, 4, ResetMode::Subtract).unwrap();
        // stem + 9 blocks × 2 + classifier = 20 banks.
        assert_eq!(thresholds.len(), 20);
    }
}
