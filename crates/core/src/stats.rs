//! Activation statistics over calibration data.
//!
//! Norm-factor strategies other than TCL need to *observe* the trained
//! ANN's activations: Diehl et al. 2015 takes each layer's maximum,
//! Rueckauer et al. 2017 the 99.9th percentile (Section 3.2). This module
//! walks a network over a calibration set and records, per **activation
//! site**, the running maximum and a reservoir sample for percentile
//! queries; it also produces the full per-site histograms behind the
//! paper's Figure 1.
//!
//! An *activation site* is the output of a ReLU(+Clip) group:
//!
//! * every top-level `ReLU [→ Clip]` pair is one site;
//! * a residual block contributes two sites (after `relu1[+clip1]` and after
//!   `relu_out[+clip_out]`, i.e. the NS and OS rates of Figure 3);
//! * the final classifier output is one extra site, recorded through
//!   `max(0, ·)` because only positive logits can drive spikes.
//!
//! Site order is identical to the conversion walk in [`crate::Converter`].

use crate::error::{ConvertError, Result};
use tcl_nn::layers::Shortcut;
use tcl_nn::{Layer, Mode, Network};
use tcl_tensor::{Histogram, SeededRng, Shape, Tensor};

/// Streaming per-site statistics: exact maximum plus a uniform reservoir
/// sample for percentile estimation.
#[derive(Debug, Clone)]
pub struct SiteStats {
    max: f32,
    reservoir: Vec<f32>,
    cap: usize,
    seen: u64,
    rng: SeededRng,
    sorted: bool,
}

impl SiteStats {
    /// Creates empty statistics with the given reservoir capacity.
    pub fn new(cap: usize, seed: u64) -> Self {
        SiteStats {
            max: 0.0,
            reservoir: Vec::with_capacity(cap.min(4096)),
            cap: cap.max(1),
            seen: 0,
            rng: SeededRng::new(seed),
            sorted: false,
        }
    }

    /// Records one activation value (negative values are clamped to zero —
    /// sites are post-ReLU).
    pub fn record(&mut self, value: f32) {
        let v = value.max(0.0);
        if v > self.max {
            self.max = v;
        }
        self.seen += 1;
        if self.reservoir.len() < self.cap {
            self.reservoir.push(v);
            self.sorted = false;
        } else {
            // Vitter's algorithm R: keep each seen value with prob cap/seen.
            // The index must be drawn in integer space: deriving it from a
            // `f32` uniform sample quantizes `j` to a ~2^24-point grid, so
            // once `seen` exceeds 2^24 most reservoir slots become
            // unreachable and the sample over-weights the early stream.
            let j = self.rng.below_u64(self.seen);
            if (j as usize) < self.cap {
                self.reservoir[j as usize] = v;
                self.sorted = false;
            }
        }
    }

    /// Records every value in a slice.
    pub fn record_all(&mut self, values: &[f32]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Pretends `seen` values have already streamed past (test hook for
    /// exercising large-stream replacement behaviour without feeding
    /// billions of records).
    #[cfg(test)]
    fn force_seen(&mut self, seen: u64) {
        assert!(self.reservoir.len() >= self.cap, "reservoir must be full");
        self.seen = seen.max(self.seen);
    }

    /// Largest value seen.
    pub fn max(&self) -> f32 {
        self.max
    }

    /// Number of values seen.
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// Approximate `q`-quantile from the reservoir (exact when fewer than
    /// `cap` values were seen). Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f32) -> f32 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.reservoir.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            // total_cmp gives a deterministic order even if a NaN ever
            // sneaks in (it sorts to the top instead of aborting the run).
            self.reservoir.sort_by(f32::total_cmp);
            self.sorted = true;
        }
        let pos = q as f64 * (self.reservoir.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = (pos - lo as f64) as f32;
        self.reservoir[lo] * (1.0 - frac) + self.reservoir[hi] * frac
    }
}

/// Applies a `ReLU [→ Clip]` group functionally (evaluation semantics).
fn apply_activation(x: &Tensor, lambda: Option<f32>) -> Tensor {
    match lambda {
        Some(lam) => x.map(|v| v.max(0.0).min(lam)),
        None => x.map(|v| v.max(0.0)),
    }
}

/// Walks one batch through the network, calling `sink(site_index, values)`
/// at every activation site. Returns the final logits.
///
/// The walk must mirror [`crate::Converter`]'s traversal exactly — both are
/// driven by the same layer sequence, with sites after every activation
/// group and two sites inside each residual block.
pub(crate) fn walk_sites<F>(net: &mut Network, input: &Tensor, sink: &mut F) -> Result<Tensor>
where
    F: FnMut(usize, &Tensor),
{
    let mut site = 0usize;
    let mut x = input.clone();
    let layers = net.layers_mut();
    let mut i = 0usize;
    while i < layers.len() {
        match &mut layers[i] {
            Layer::Relu(_) => {
                // Merge with a following clip, if any.
                let lambda = match layers.get(i + 1) {
                    Some(Layer::Clip(c)) => {
                        i += 1;
                        Some(c.lambda_value())
                    }
                    _ => None,
                };
                x = apply_activation(&x, lambda);
                sink(site, &x);
                site += 1;
            }
            Layer::Clip(c) => {
                // A clip without a preceding ReLU still bounds activations;
                // treat it as its own site for robustness.
                let lam = c.lambda_value();
                x = x.map(|v| v.min(lam));
                sink(site, &x);
                site += 1;
            }
            Layer::Residual(block) => {
                let mut h = block.conv1.forward(&x, Mode::Eval)?;
                if let Some(bn) = &mut block.bn1 {
                    h = bn.forward(&h, Mode::Eval)?;
                }
                h = apply_activation(&h, block.clip1.as_ref().map(|c| c.lambda_value()));
                sink(site, &h);
                site += 1;
                let mut h2 = block.conv2.forward(&h, Mode::Eval)?;
                if let Some(bn) = &mut block.bn2 {
                    h2 = bn.forward(&h2, Mode::Eval)?;
                }
                let s = match &mut block.shortcut {
                    Shortcut::Identity => x.clone(),
                    Shortcut::Projection { conv, bn } => {
                        let mut s = conv.forward(&x, Mode::Eval)?;
                        if let Some(bn) = bn {
                            s = bn.forward(&s, Mode::Eval)?;
                        }
                        s
                    }
                };
                let y = h2.add(&s)?;
                x = apply_activation(&y, block.clip_out.as_ref().map(|c| c.lambda_value()));
                sink(site, &x);
                site += 1;
            }
            other => {
                x = other.forward(&x, Mode::Eval)?;
            }
        }
        i += 1;
    }
    // Output site: positive part of the logits.
    let positive = x.map(|v| v.max(0.0));
    sink(site, &positive);
    Ok(x)
}

/// Number of activation sites the walker will report for `net` (hidden
/// sites plus the final output site).
pub fn count_sites(net: &Network) -> usize {
    let mut sites = 0usize;
    let layers = net.layers();
    let mut i = 0usize;
    while i < layers.len() {
        match &layers[i] {
            Layer::Relu(_) => {
                if matches!(layers.get(i + 1), Some(Layer::Clip(_))) {
                    i += 1;
                }
                sites += 1;
            }
            Layer::Clip(_) => sites += 1,
            Layer::Residual(_) => sites += 2,
            _ => {}
        }
        i += 1;
    }
    sites + 1 // output site
}

/// Runs `net` (evaluation mode) over `images` in batches and returns one
/// [`SiteStats`] per activation site, in walk order.
///
/// # Errors
///
/// Returns a calibration error for empty input or zero batch size, and
/// propagates network shape errors.
pub fn collect_activation_stats(
    net: &mut Network,
    images: &Tensor,
    batch_size: usize,
) -> Result<Vec<SiteStats>> {
    let n = images.dims().first().copied().unwrap_or(0);
    if n == 0 {
        return Err(ConvertError::Calibration {
            detail: "calibration set is empty".into(),
        });
    }
    if batch_size == 0 {
        return Err(ConvertError::Calibration {
            detail: "batch size must be nonzero".into(),
        });
    }
    let sites = count_sites(net);
    // Reservoir capacity: enough for stable 99.9th-percentile estimates
    // without holding the whole activation stream.
    let mut stats: Vec<SiteStats> = (0..sites)
        .map(|i| SiteStats::new(100_000, 0xC0FFEE + i as u64))
        .collect();
    let row = images.len() / n;
    let dims = images.dims().to_vec();
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let mut bdims = dims.clone();
        bdims[0] = end - start;
        let batch = Tensor::from_vec(
            Shape::new(bdims),
            images.data()[start * row..end * row].to_vec(),
        )?;
        walk_sites(net, &batch, &mut |site, values| {
            stats[site].record_all(values.data());
        })?;
        start = end;
    }
    Ok(stats)
}

/// Builds the full activation histogram of one site over `images` — the
/// data behind the paper's Figure 1.
///
/// Two passes: the first finds the site maximum, the second fills a
/// `bins`-bin histogram over `[0, max]`.
///
/// # Errors
///
/// Returns a calibration error if `site` is out of range or the input is
/// empty.
pub fn collect_site_histogram(
    net: &mut Network,
    images: &Tensor,
    batch_size: usize,
    site: usize,
    bins: usize,
) -> Result<Histogram> {
    let sites = count_sites(net);
    if site >= sites {
        return Err(ConvertError::Calibration {
            detail: format!("site {site} out of range ({sites} sites)"),
        });
    }
    let stats = collect_activation_stats(net, images, batch_size)?;
    let upper = (stats[site].max() * 1.0001).max(1e-6);
    let mut hist = Histogram::new(bins, upper);
    let n = images.dims()[0];
    let row = images.len() / n;
    let dims = images.dims().to_vec();
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let mut bdims = dims.clone();
        bdims[0] = end - start;
        let batch = Tensor::from_vec(
            Shape::new(bdims),
            images.data()[start * row..end * row].to_vec(),
        )?;
        walk_sites(net, &batch, &mut |s, values| {
            if s == site {
                hist.record_all(values.data());
            }
        })?;
        start = end;
    }
    Ok(hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcl_models::{Architecture, ModelConfig};
    use tcl_tensor::SeededRng;

    fn small_net(clip: Option<f32>) -> Network {
        let mut rng = SeededRng::new(3);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_clip_lambda(clip);
        Architecture::Cnn6.build(&cfg, &mut rng).unwrap()
    }

    #[test]
    fn site_count_matches_activation_groups() {
        // cnn6: 4 conv activations + 1 hidden linear activation + output.
        assert_eq!(count_sites(&small_net(Some(2.0))), 6);
        assert_eq!(count_sites(&small_net(None)), 6);
    }

    #[test]
    fn residual_networks_have_two_sites_per_block() {
        let mut rng = SeededRng::new(4);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_clip_lambda(Some(2.0));
        let net = Architecture::ResNet20.build(&cfg, &mut rng).unwrap();
        // Stem activation + 9 blocks × 2 + output.
        assert_eq!(count_sites(&net), 1 + 18 + 1);
    }

    #[test]
    fn stats_cover_every_site_and_respect_clip_bounds() {
        let mut net = small_net(Some(2.0));
        let mut rng = SeededRng::new(5);
        let images = rng.uniform_tensor([16, 3, 8, 8], -1.0, 1.0);
        let mut stats = collect_activation_stats(&mut net, &images, 4).unwrap();
        assert_eq!(stats.len(), 6);
        for (i, s) in stats.iter_mut().enumerate() {
            assert!(s.count() > 0, "site {i} saw no data");
            // Hidden sites are clipped at λ = 2.
            if i < 5 {
                assert!(s.max() <= 2.0 + 1e-5, "site {i} max {}", s.max());
            }
            assert!(s.quantile(1.0) <= s.max() + 1e-5);
        }
    }

    #[test]
    fn walker_matches_plain_forward() {
        let mut net = small_net(Some(2.0));
        let mut rng = SeededRng::new(6);
        let x = rng.uniform_tensor([2, 3, 8, 8], -1.0, 1.0);
        let via_walk = walk_sites(&mut net, &x, &mut |_, _| {}).unwrap();
        let plain = net.forward(&x, Mode::Eval).unwrap();
        assert!(via_walk.max_abs_diff(&plain).unwrap() < 1e-5);
    }

    #[test]
    fn walker_matches_plain_forward_on_resnet() {
        let mut rng = SeededRng::new(7);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_clip_lambda(Some(2.0));
        let mut net = Architecture::ResNet18.build(&cfg, &mut rng).unwrap();
        let x = rng.uniform_tensor([2, 3, 8, 8], -1.0, 1.0);
        let via_walk = walk_sites(&mut net, &x, &mut |_, _| {}).unwrap();
        let plain = net.forward(&x, Mode::Eval).unwrap();
        assert!(via_walk.max_abs_diff(&plain).unwrap() < 1e-4);
    }

    #[test]
    fn reservoir_quantiles_are_plausible() {
        let mut s = SiteStats::new(1000, 1);
        for i in 0..100_000 {
            s.record((i % 1000) as f32 / 1000.0);
        }
        let q = s.quantile(0.5);
        assert!((q - 0.5).abs() < 0.05, "median {q}");
        assert!(s.max() >= 0.999);
        assert_eq!(s.count(), 100_000);
    }

    #[test]
    fn reservoir_replacement_reaches_all_slots_at_large_seen() {
        // Regression for the biased algorithm-R index: with the index drawn
        // as `(uniform(0,1) * seen as f32) as u64`, a stream position past
        // 2^24 quantizes `j` to a coarse grid (spacing seen/2^24 ≈ 16 at
        // seen = 2^28), so odd-indexed reservoir slots can never be
        // replaced again and the sample permanently over-weights the early
        // stream. The u64 draw must keep every slot reachable.
        let cap = 4096usize;
        let mut s = SiteStats::new(cap, 42);
        for _ in 0..cap {
            s.record(0.0);
        }
        s.force_seen(1 << 28);
        for _ in 0..2_000_000u32 {
            s.record(1.0);
        }
        let odd_replaced = s
            .reservoir
            .iter()
            .enumerate()
            .filter(|(i, &v)| i % 2 == 1 && v == 1.0)
            .count();
        let total_replaced = s.reservoir.iter().filter(|&&v| v == 1.0).count();
        // ~cap·ln((2^28+2M)/2^28) ≈ 30 replacements expected; the exact
        // count is seed-dependent, but roughly half must land on odd slots.
        assert!(
            total_replaced > 5,
            "replacement starved: {total_replaced} slots touched"
        );
        assert!(
            odd_replaced > 0,
            "no odd-indexed slot was ever replaced ({total_replaced} total): \
             the index draw has lost integer precision"
        );
    }

    #[test]
    fn reservoir_replacement_rate_matches_algorithm_r() {
        // P(replace) = cap/seen per record; over k records starting at seen₀
        // the expected number of replacements is ≈ cap·ln((seen₀+k)/seen₀).
        let cap = 1024usize;
        let mut s = SiteStats::new(cap, 7);
        for _ in 0..cap {
            s.record(0.0);
        }
        s.force_seen(1 << 26);
        let k = 4_000_000u64;
        for _ in 0..k {
            s.record(1.0);
        }
        let replaced = s.reservoir.iter().filter(|&&v| v == 1.0).count() as f64;
        let seen0 = (1u64 << 26) as f64;
        let expected = cap as f64 * ((seen0 + k as f64) / seen0).ln();
        assert!(
            (replaced - expected).abs() < expected * 0.5 + 10.0,
            "replacements {replaced} vs expected {expected:.1}"
        );
    }

    #[test]
    fn histogram_covers_site_distribution() {
        let mut net = small_net(None);
        let mut rng = SeededRng::new(8);
        let images = rng.uniform_tensor([8, 3, 8, 8], -1.0, 1.0);
        let hist = collect_site_histogram(&mut net, &images, 4, 1, 64).unwrap();
        assert!(hist.total_count() > 0);
        // All mass is inside the two-pass range.
        assert_eq!(hist.overflow_count(), 0);
    }

    #[test]
    fn histogram_site_out_of_range_errors() {
        let mut net = small_net(None);
        let images = Tensor::zeros([2, 3, 8, 8]);
        assert!(collect_site_histogram(&mut net, &images, 2, 99, 8).is_err());
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let mut net = small_net(None);
        let images = Tensor::zeros([0, 3, 8, 8]);
        assert!(collect_activation_stats(&mut net, &images, 4).is_err());
    }
}
