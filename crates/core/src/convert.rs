//! The ANN-to-SNN converter: norm-factor resolution (Section 3.2 / 4) and
//! data-normalization (Eq. 5), including the residual-block algebra of
//! Section 5.

use crate::error::{ConvertError, Result};
use crate::fold::fold_batch_norm;
use crate::stats::{collect_activation_stats, count_sites};
use serde::{Deserialize, Serialize};
use tcl_nn::layers::Shortcut;
use tcl_nn::{Layer, Network};
use tcl_snn::{
    IfNeurons, ResetMode, SpikingLayer, SpikingNetwork, SpikingNode, SpikingResidual, SynapticOp,
};
use tcl_tensor::ops::ConvGeometry;
use tcl_tensor::Tensor;

/// How per-layer norm-factors `λ_l` (Eq. 5) are decided.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NormStrategy {
    /// Maximum activation over the calibration set (Diehl et al. 2015).
    /// Lossless but produces very large latency — the paper's motivating
    /// baseline.
    MaxActivation,
    /// Activation percentile over the calibration set (Rueckauer et
    /// al. 2017 use 0.999). Lower latency, but clips real signal when the
    /// distribution is wide.
    Percentile(f32),
    /// The trained clipping bound λ of each TCL layer (the paper's
    /// technique, Section 4). Requires a network trained with clipping
    /// layers.
    TrainedClip,
    /// Sequential spike-driven threshold balancing (Sengupta et al. 2019).
    /// Weights stay unscaled; each layer's threshold is the peak synaptic
    /// current observed while simulating calibration inputs with earlier
    /// layers already balanced. See [`crate::Converter::with_spike_norm_steps`].
    SpikeNorm,
}

impl NormStrategy {
    /// The Rueckauer et al. 99.9th-percentile baseline.
    pub fn percentile_999() -> Self {
        NormStrategy::Percentile(0.999)
    }

    /// Display name used by harness tables.
    pub fn name(&self) -> String {
        match self {
            NormStrategy::MaxActivation => "max-norm".to_string(),
            NormStrategy::Percentile(p) => format!("p{:.1}%", p * 100.0),
            NormStrategy::TrainedClip => "tcl".to_string(),
            NormStrategy::SpikeNorm => "spike-norm".to_string(),
        }
    }
}

/// A completed conversion: the spiking network plus the resolved per-site
/// norm-factors (useful for diagnostics and the paper's Figure 1 markers).
#[derive(Debug, Clone)]
pub struct Conversion {
    /// The converted spiking network (all thresholds are 1 in normalized
    /// units).
    pub snn: SpikingNetwork,
    /// Resolved norm-factors, one per activation site in walk order; the
    /// last entry is the output site.
    pub lambdas: Vec<f32>,
    /// The strategy that produced them.
    pub strategy: NormStrategy,
}

/// Converts trained ANNs to spiking networks.
///
/// The pipeline is the paper's Section 3–5:
///
/// 1. fold batch-norm into the preceding convolutions (Eq. 7);
/// 2. decide one norm-factor per activation site ([`NormStrategy`]);
/// 3. rescale weights `Ŵ = W·λ_pre/λ` and biases `b̂ = b/λ` (Eq. 5), with the
///    dual-path OS algebra for residual blocks (Section 5);
/// 4. emit IF spiking layers with threshold 1 and the configured reset mode.
///
/// # Examples
///
/// ```
/// use tcl_core::{Converter, NormStrategy};
/// use tcl_models::{Architecture, ModelConfig};
/// use tcl_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let cfg = ModelConfig::new((3, 8, 8), 4)
///     .with_base_width(2)
///     .with_clip_lambda(Some(2.0));
/// let net = Architecture::Cnn6.build(&cfg, &mut rng)?;
/// let calibration = rng.uniform_tensor([8, 3, 8, 8], -1.0, 1.0);
/// let conversion = Converter::new(NormStrategy::TrainedClip)
///     .convert(&net, &calibration)?;
/// assert_eq!(conversion.lambdas.len(), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Converter {
    /// Norm-factor strategy.
    pub strategy: NormStrategy,
    /// Neuron reset behaviour (the paper uses reset-by-subtraction).
    pub reset_mode: ResetMode,
    /// Batch size for calibration forward passes.
    pub calibration_batch: usize,
    /// Balancing timesteps per layer for [`NormStrategy::SpikeNorm`].
    pub spike_norm_steps: usize,
}

impl Converter {
    /// Creates a converter with reset-by-subtraction and calibration batch
    /// size 32.
    pub fn new(strategy: NormStrategy) -> Self {
        Converter {
            strategy,
            reset_mode: ResetMode::Subtract,
            calibration_batch: 32,
            spike_norm_steps: 30,
        }
    }

    /// Sets the neuron reset mode.
    pub fn with_reset_mode(mut self, reset_mode: ResetMode) -> Self {
        self.reset_mode = reset_mode;
        self
    }

    /// Sets the calibration batch size.
    pub fn with_calibration_batch(mut self, batch: usize) -> Self {
        self.calibration_batch = batch.max(1);
        self
    }

    /// Sets the per-layer balancing duration for [`NormStrategy::SpikeNorm`].
    pub fn with_spike_norm_steps(mut self, steps: usize) -> Self {
        self.spike_norm_steps = steps.max(1);
        self
    }

    /// Converts a trained ANN into a spiking network.
    ///
    /// `calibration` is a tensor of input stimuli (typically a few hundred
    /// training images) used to measure activation statistics; it is
    /// required for every strategy because the output layer's norm-factor
    /// is always statistics-derived.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Unsupported`] for max pooling or a
    /// classifier with a trailing activation, [`ConvertError::MissingClip`]
    /// when [`NormStrategy::TrainedClip`] meets a clip-less site, and
    /// calibration errors for empty input.
    pub fn convert(&self, net: &Network, calibration: &Tensor) -> Result<Conversion> {
        let _span = tcl_telemetry::span_with("convert", || {
            vec![
                ("layers", net.layers().len() as f64),
                (
                    "calib",
                    calibration.dims().first().copied().unwrap_or(0) as f64,
                ),
            ]
        });
        validate_convertible(net)?;
        if self.strategy == NormStrategy::SpikeNorm {
            let (snn, thresholds) = crate::spikenorm::convert_spike_norm(
                net,
                calibration,
                self.spike_norm_steps,
                self.calibration_batch,
                self.reset_mode,
            )?;
            record_lambda_gauges(&thresholds);
            return Ok(Conversion {
                snn,
                lambdas: thresholds,
                strategy: self.strategy,
            });
        }
        let folded = fold_batch_norm(net)?;
        let mut stats_net = folded.clone();
        let mut stats =
            collect_activation_stats(&mut stats_net, calibration, self.calibration_batch)?;
        let lambdas = self.resolve_lambdas(&folded, &mut stats)?;
        record_lambda_gauges(&lambdas);
        let snn = emit_spiking(&folded, &lambdas, self.reset_mode)?;
        Ok(Conversion {
            snn,
            lambdas,
            strategy: self.strategy,
        })
    }

    /// Resolves one λ per site (hidden sites per strategy; output site from
    /// the maximum positive logit).
    fn resolve_lambdas(
        &self,
        folded: &Network,
        stats: &mut [crate::stats::SiteStats],
    ) -> Result<Vec<f32>> {
        let clips = site_clip_bounds(folded);
        let sites = count_sites(folded);
        debug_assert_eq!(stats.len(), sites);
        debug_assert_eq!(clips.len(), sites - 1);
        let mut lambdas = Vec::with_capacity(sites);
        for site in 0..sites - 1 {
            let lam = match self.strategy {
                NormStrategy::TrainedClip => {
                    clips[site].ok_or_else(|| ConvertError::MissingClip {
                        detail: format!("activation site {site} has no clipping layer"),
                    })?
                }
                NormStrategy::MaxActivation => stats[site].max(),
                NormStrategy::Percentile(p) => {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(ConvertError::Calibration {
                            detail: format!("percentile {p} outside [0, 1]"),
                        });
                    }
                    stats[site].quantile(p)
                }
                NormStrategy::SpikeNorm => {
                    unreachable!("spike-norm is dispatched before λ resolution")
                }
            };
            // A dead site (all-zero activations) would produce λ = 0 and a
            // division by zero; treat it as unit scale.
            lambdas.push(if lam > 1e-6 { lam } else { 1.0 });
        }
        let out = stats[sites - 1].max();
        lambdas.push(if out > 1e-6 { out } else { 1.0 });
        Ok(lambdas)
    }
}

/// Publishes the resolved per-site norm-factors as indexed telemetry gauges
/// (`convert.lambda[i]`), so any run with `TCL_METRICS` set can inspect the
/// thresholds a conversion actually used.
fn record_lambda_gauges(lambdas: &[f32]) {
    if !tcl_telemetry::metrics_enabled() {
        return;
    }
    for (i, &lam) in lambdas.iter().enumerate() {
        tcl_telemetry::gauge_set_indexed("convert.lambda", i, f64::from(lam));
    }
}

/// Rejects constructs with no spiking equivalent before any work is done.
fn validate_convertible(net: &Network) -> Result<()> {
    if net.is_empty() {
        return Err(ConvertError::Unsupported {
            detail: "empty network".into(),
        });
    }
    for layer in net.layers() {
        if matches!(layer, Layer::MaxPool2d(_)) {
            return Err(ConvertError::Unsupported {
                detail: "max pooling has no spiking implementation; \
                         build the model with average pooling (Section 3.1)"
                    .into(),
            });
        }
    }
    match net.layers().last() {
        Some(Layer::Linear(_)) | Some(Layer::Conv2d(_)) => Ok(()),
        Some(other) => Err(ConvertError::Unsupported {
            detail: format!(
                "the network must end in a bare classifier layer for the \
                 spike-count readout, found {}",
                other.kind_name()
            ),
        }),
        None => unreachable!("checked non-empty"),
    }
}

/// Per-hidden-site clip bounds (None where a site has no clipping layer),
/// in the same order as the stats walker.
fn site_clip_bounds(net: &Network) -> Vec<Option<f32>> {
    let mut out = Vec::new();
    let layers = net.layers();
    let mut i = 0usize;
    while i < layers.len() {
        match &layers[i] {
            Layer::Relu(_) => {
                if let Some(Layer::Clip(c)) = layers.get(i + 1) {
                    out.push(Some(c.lambda_value()));
                    i += 1;
                } else {
                    out.push(None);
                }
            }
            Layer::Clip(c) => out.push(Some(c.lambda_value())),
            Layer::Residual(r) => {
                out.push(r.clip1.as_ref().map(|c| c.lambda_value()));
                out.push(r.clip_out.as_ref().map(|c| c.lambda_value()));
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Scales a weight tensor by `factor`.
fn scaled(weight: &Tensor, factor: f32) -> Tensor {
    weight.scale(factor)
}

/// Builds the virtual identity 1×1 convolution of a type-A residual block
/// (Section 5): `channels → channels`, unit diagonal kernel.
fn identity_conv_weight(channels: usize) -> Tensor {
    let mut w = Tensor::zeros([channels, channels, 1, 1]);
    for c in 0..channels {
        w.data_mut()[c * channels + c] = 1.0;
    }
    w
}

/// Emits the spiking network from a BN-folded ANN and resolved λs.
fn emit_spiking(folded: &Network, lambdas: &[f32], reset: ResetMode) -> Result<SpikingNetwork> {
    let layers = folded.layers();
    let mut nodes: Vec<SpikingNode> = Vec::new();
    let mut lam_prev = 1.0f32; // real-coded analog input is unscaled
    let mut site = 0usize;
    let hidden_sites = lambdas.len() - 1;
    let mut i = 0usize;
    while i < layers.len() {
        match &layers[i] {
            Layer::Conv2d(conv) => {
                let has_activation = matches!(
                    layers.get(i + 1),
                    Some(Layer::Relu(_)) | Some(Layer::Clip(_))
                );
                let lam = if has_activation {
                    let l = *lambdas.get(site).ok_or_else(|| site_underflow(site))?;
                    site += 1;
                    l
                } else if i + 1 == layers.len() {
                    lambdas[hidden_sites]
                } else {
                    return Err(ConvertError::Unsupported {
                        detail: format!("convolution at layer {i} has no following activation"),
                    });
                };
                nodes.push(SpikingNode::Spiking(SpikingLayer::new(
                    SynapticOp::Conv {
                        weight: scaled(&conv.weight.value, lam_prev / lam),
                        bias: conv.bias.as_ref().map(|b| b.value.scale(1.0 / lam)),
                        geom: conv.geom,
                    },
                    IfNeurons::new(1.0, reset),
                )));
                lam_prev = lam;
                // Skip the consumed activation layers.
                while matches!(
                    layers.get(i + 1),
                    Some(Layer::Relu(_)) | Some(Layer::Clip(_))
                ) {
                    i += 1;
                }
            }
            Layer::Linear(linear) => {
                let has_activation = matches!(
                    layers.get(i + 1),
                    Some(Layer::Relu(_)) | Some(Layer::Clip(_))
                );
                let lam = if has_activation {
                    let l = *lambdas.get(site).ok_or_else(|| site_underflow(site))?;
                    site += 1;
                    l
                } else if i + 1 == layers.len() {
                    lambdas[hidden_sites]
                } else {
                    return Err(ConvertError::Unsupported {
                        detail: format!("linear layer at {i} has no following activation"),
                    });
                };
                nodes.push(SpikingNode::Spiking(SpikingLayer::new(
                    SynapticOp::Linear {
                        weight: scaled(&linear.weight.value, lam_prev / lam),
                        bias: linear.bias.as_ref().map(|b| b.value.scale(1.0 / lam)),
                    },
                    IfNeurons::new(1.0, reset),
                )));
                lam_prev = lam;
                while matches!(
                    layers.get(i + 1),
                    Some(Layer::Relu(_)) | Some(Layer::Clip(_))
                ) {
                    i += 1;
                }
            }
            Layer::Residual(block) => {
                let lam_pre = lam_prev;
                let lam_c1 = *lambdas.get(site).ok_or_else(|| site_underflow(site))?;
                let lam_out = *lambdas.get(site + 1).ok_or_else(|| site_underflow(site))?;
                site += 2;
                // NS (from Conv1): Ŵns = W_c1 · λ_pre/λ_c1, b̂ns = b_c1/λ_c1.
                let ns_op = SynapticOp::Conv {
                    weight: scaled(&block.conv1.weight.value, lam_pre / lam_c1),
                    bias: block
                        .conv1
                        .bias
                        .as_ref()
                        .map(|b| b.value.scale(1.0 / lam_c1)),
                    geom: block.conv1.geom,
                };
                // OS main (from Conv2): Ŵosn = W_c2 · λ_c1/λ_out.
                let c2_bias = block
                    .conv2
                    .bias
                    .as_ref()
                    .map(|b| b.value.clone())
                    .unwrap_or_else(|| Tensor::zeros([block.conv2.out_channels()]));
                // OS shortcut (from ConvSh or the virtual identity conv):
                // Ŵosi = W_sh · λ_pre/λ_out; b̂os = (b_c2 + b_sh)/λ_out.
                let (sh_weight, sh_geom, sh_bias) = match &block.shortcut {
                    Shortcut::Projection { conv, .. } => (
                        conv.weight.value.clone(),
                        conv.geom,
                        conv.bias
                            .as_ref()
                            .map(|b| b.value.clone())
                            .unwrap_or_else(|| Tensor::zeros([conv.out_channels()])),
                    ),
                    Shortcut::Identity => (
                        identity_conv_weight(block.conv2.out_channels()),
                        ConvGeometry::square(1, 1, 0)?,
                        Tensor::zeros([block.conv2.out_channels()]),
                    ),
                };
                let combined_bias = c2_bias.add(&sh_bias)?.scale(1.0 / lam_out);
                let os_main = SynapticOp::Conv {
                    weight: scaled(&block.conv2.weight.value, lam_c1 / lam_out),
                    bias: Some(combined_bias),
                    geom: block.conv2.geom,
                };
                let os_shortcut = SynapticOp::Conv {
                    weight: scaled(&sh_weight, lam_pre / lam_out),
                    bias: None,
                    geom: sh_geom,
                };
                nodes.push(SpikingNode::Residual(SpikingResidual {
                    ns_op,
                    ns_neurons: IfNeurons::new(1.0, reset),
                    os_main,
                    os_shortcut,
                    os_neurons: IfNeurons::new(1.0, reset),
                }));
                lam_prev = lam_out;
            }
            Layer::AvgPool2d(p) => nodes.push(SpikingNode::AvgPool {
                kernel: p.kernel,
                stride: p.stride,
            }),
            Layer::GlobalAvgPool(_) => nodes.push(SpikingNode::GlobalAvgPool),
            Layer::Flatten(_) => nodes.push(SpikingNode::Flatten),
            Layer::Dropout(_) => {} // identity at inference: emit nothing
            Layer::Relu(_) | Layer::Clip(_) => {
                return Err(ConvertError::Unsupported {
                    detail: format!("activation at layer {i} is not preceded by a weighted layer"),
                });
            }
            Layer::BatchNorm2d(_) => unreachable!("batch-norm was folded"),
            Layer::MaxPool2d(_) => unreachable!("max pooling rejected in validation"),
        }
        i += 1;
    }
    Ok(SpikingNetwork::new(nodes))
}

fn site_underflow(site: usize) -> ConvertError {
    ConvertError::Calibration {
        detail: format!("norm-factor list exhausted at site {site}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcl_models::{Architecture, ModelConfig, Pooling};
    use tcl_tensor::SeededRng;

    fn build(arch: Architecture, clip: Option<f32>, seed: u64) -> Network {
        let mut rng = SeededRng::new(seed);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_clip_lambda(clip);
        arch.build(&cfg, &mut rng).unwrap()
    }

    fn calib(seed: u64) -> Tensor {
        SeededRng::new(seed).uniform_tensor([12, 3, 8, 8], -1.0, 1.0)
    }

    #[test]
    fn trained_clip_uses_clip_bounds_verbatim() {
        let net = build(Architecture::Cnn6, Some(2.0), 0);
        let conv = Converter::new(NormStrategy::TrainedClip);
        let c = conv.convert(&net, &calib(1)).unwrap();
        // 5 hidden sites at the initial λ = 2.0, one stats-derived output.
        assert_eq!(c.lambdas.len(), 6);
        for lam in &c.lambdas[..5] {
            assert!((lam - 2.0).abs() < 1e-6);
        }
        assert!(c.lambdas[5] > 0.0);
    }

    #[test]
    fn trained_clip_on_unclipped_network_fails() {
        let net = build(Architecture::Cnn6, None, 0);
        let conv = Converter::new(NormStrategy::TrainedClip);
        assert!(matches!(
            conv.convert(&net, &calib(1)),
            Err(ConvertError::MissingClip { .. })
        ));
    }

    #[test]
    fn max_norm_lambdas_bound_percentile_lambdas() {
        let net = build(Architecture::Cnn6, None, 2);
        let cal = calib(3);
        let max = Converter::new(NormStrategy::MaxActivation)
            .convert(&net, &cal)
            .unwrap();
        let pct = Converter::new(NormStrategy::percentile_999())
            .convert(&net, &cal)
            .unwrap();
        for (m, p) in max.lambdas.iter().zip(&pct.lambdas) {
            assert!(m + 1e-5 >= *p, "max {m} < percentile {p}");
        }
    }

    #[test]
    fn node_structure_mirrors_ann_structure() {
        let net = build(Architecture::Cnn6, Some(2.0), 4);
        let c = Converter::new(NormStrategy::TrainedClip)
            .convert(&net, &calib(5))
            .unwrap();
        let kinds: Vec<&str> = c.snn.nodes().iter().map(|n| n.kind_name()).collect();
        assert_eq!(
            kinds,
            vec![
                "spiking", "spiking", "avgpool", "spiking", "spiking", "avgpool", "flatten",
                "spiking", "spiking"
            ]
        );
    }

    #[test]
    fn resnet_conversion_emits_residual_nodes() {
        let net = build(Architecture::ResNet20, Some(2.0), 6);
        let c = Converter::new(NormStrategy::TrainedClip)
            .convert(&net, &calib(7))
            .unwrap();
        let residuals = c
            .snn
            .nodes()
            .iter()
            .filter(|n| n.kind_name() == "residual")
            .count();
        assert_eq!(residuals, 9);
        // stem site + 18 block sites + output.
        assert_eq!(c.lambdas.len(), 20);
    }

    #[test]
    fn max_pooling_is_rejected() {
        let mut rng = SeededRng::new(8);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_pooling(Pooling::Max);
        let net = Architecture::Cnn6.build(&cfg, &mut rng).unwrap();
        let err = Converter::new(NormStrategy::MaxActivation)
            .convert(&net, &calib(9))
            .unwrap_err();
        assert!(matches!(err, ConvertError::Unsupported { .. }));
    }

    #[test]
    fn invalid_percentile_is_rejected() {
        let net = build(Architecture::Cnn6, None, 10);
        let err = Converter::new(NormStrategy::Percentile(1.5))
            .convert(&net, &calib(11))
            .unwrap_err();
        assert!(matches!(err, ConvertError::Calibration { .. }));
    }

    #[test]
    fn strategy_names_for_tables() {
        assert_eq!(NormStrategy::MaxActivation.name(), "max-norm");
        assert_eq!(NormStrategy::percentile_999().name(), "p99.9%");
        assert_eq!(NormStrategy::TrainedClip.name(), "tcl");
    }

    #[test]
    fn identity_conv_weight_is_diagonal() {
        let w = identity_conv_weight(3);
        assert_eq!(w.dims(), &[3, 3, 1, 1]);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_eq!(w.at4(i, j, 0, 0), expected);
            }
        }
    }

    #[test]
    fn empty_network_is_rejected() {
        let net = Network::new(vec![]);
        assert!(Converter::new(NormStrategy::MaxActivation)
            .convert(&net, &calib(12))
            .is_err());
    }

    #[test]
    fn trailing_activation_is_rejected() {
        use tcl_nn::layers::{Linear, Relu};
        let mut rng = SeededRng::new(13);
        let net = Network::new(vec![
            Layer::Linear(Linear::new(4, 4, true, &mut rng).unwrap()),
            Layer::Relu(Relu::new()),
        ]);
        let cal = SeededRng::new(14).uniform_tensor([4, 4], 0.0, 1.0);
        let err = Converter::new(NormStrategy::MaxActivation)
            .convert(&net, &cal)
            .unwrap_err();
        assert!(matches!(err, ConvertError::Unsupported { .. }));
    }
}
