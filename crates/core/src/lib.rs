//! # tcl-core
//!
//! The primary contribution of *"TCL: an ANN-to-SNN Conversion with
//! Trainable Clipping Layers"* (Ho & Chang, DAC 2021), reproduced in Rust:
//! converting trained analog neural networks into integrate-and-fire
//! spiking networks whose per-layer thresholds come from **trained clipping
//! bounds** rather than post-hoc activation statistics.
//!
//! ## Pipeline
//!
//! 1. **Train** an ANN whose every ReLU is followed by a trainable clipping
//!    layer (`tcl_nn::layers::Clip`, Eqs. 8–9) — see `tcl-models` builders
//!    with `clip_lambda: Some(λ₀)`.
//! 2. **Fold** batch normalization into the preceding convolutions
//!    ([`fold_batch_norm`], Eq. 7).
//! 3. **Resolve norm-factors** per activation site ([`NormStrategy`]):
//!    the trained λ (TCL), the activation maximum (Diehl et al.), or an
//!    activation percentile (Rueckauer et al.) measured over calibration
//!    data ([`collect_activation_stats`]).
//! 4. **Data-normalize** weights and biases ([`Converter`], Eq. 5), with
//!    the dual-path NS/OS algebra for residual blocks (Section 5,
//!    including the virtual identity convolution for type-A blocks).
//! 5. **Simulate** the resulting `tcl_snn::SpikingNetwork` over a latency
//!    grid ([`convert_and_evaluate`]).
//!
//! ## Example
//!
//! ```
//! use tcl_core::{Converter, NormStrategy};
//! use tcl_models::{Architecture, ModelConfig};
//! use tcl_tensor::SeededRng;
//!
//! let mut rng = SeededRng::new(0);
//! let cfg = ModelConfig::new((3, 8, 8), 4)
//!     .with_base_width(2)
//!     .with_clip_lambda(Some(2.0)); // TCL layers after every ReLU
//! let net = Architecture::Cnn6.build(&cfg, &mut rng)?;
//! let calibration = rng.uniform_tensor([16, 3, 8, 8], -1.0, 1.0);
//! let conversion = Converter::new(NormStrategy::TrainedClip)
//!     .convert(&net, &calibration)?;
//! println!("norm-factors: {:?}", conversion.lambdas);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod convert;
mod diagnostics;
mod error;
mod fold;
mod pipeline;
mod spikenorm;
mod stats;

pub use convert::{Conversion, Converter, NormStrategy};
pub use diagnostics::{diagnose_conversion, ConversionDiagnostics, SiteDiagnostic};
pub use error::{ConvertError, Result};
pub use fold::fold_batch_norm;
pub use pipeline::{
    convert_and_evaluate, convert_and_evaluate_with, train_resumable, ConversionReport,
    EngineReport,
};
pub use stats::{collect_activation_stats, collect_site_histogram, count_sites, SiteStats};
