//! Edge cases of the conversion pipeline: degenerate calibration,
//! clip-free paths, bias handling, and converter configuration.

use tcl_core::{collect_activation_stats, Converter, NormStrategy};
use tcl_nn::layers::{Clip, Conv2d, Flatten, GlobalAvgPool, Linear, Relu, ResidualBlock};
use tcl_nn::{Layer, Network};
use tcl_snn::{Readout, ResetMode, SimConfig};
use tcl_tensor::{SeededRng, Tensor};

fn tiny_mlp(rng: &mut SeededRng) -> Network {
    Network::new(vec![
        Layer::Linear(Linear::new(4, 6, true, rng).unwrap()),
        Layer::Relu(Relu::new()),
        Layer::Clip(Clip::new(1.0)),
        Layer::Linear(Linear::new(6, 3, true, rng).unwrap()),
    ])
}

#[test]
fn all_negative_calibration_triggers_unit_lambda_fallbacks() {
    // Dead calibration (all activations zero after ReLU): every λ falls
    // back to 1 and conversion still succeeds.
    let mut rng = SeededRng::new(0);
    let mut fc = Linear::new(4, 6, false, &mut rng).unwrap();
    // Force negative pre-activations: strongly negative weights with
    // positive inputs.
    fc.weight.value.map_inplace(|v| -v.abs() - 0.1);
    let net = Network::new(vec![
        Layer::Linear(fc),
        Layer::Relu(Relu::new()),
        Layer::Linear(Linear::new(6, 2, true, &mut rng).unwrap()),
    ]);
    let calibration = rng.uniform_tensor([8, 4], 0.1, 1.0);
    let conv = Converter::new(NormStrategy::MaxActivation)
        .convert(&net, &calibration)
        .unwrap();
    assert!(conv.lambdas.iter().all(|&l| l == 1.0));
}

#[test]
fn single_calibration_sample_works() {
    let mut rng = SeededRng::new(1);
    let net = tiny_mlp(&mut rng);
    let calibration = rng.uniform_tensor([1, 4], -1.0, 1.0);
    for strategy in [
        NormStrategy::TrainedClip,
        NormStrategy::MaxActivation,
        NormStrategy::percentile_999(),
    ] {
        assert!(
            Converter::new(strategy).convert(&net, &calibration).is_ok(),
            "{strategy:?}"
        );
    }
}

#[test]
fn calibration_batch_larger_than_set_is_fine() {
    let mut rng = SeededRng::new(2);
    let net = tiny_mlp(&mut rng);
    let calibration = rng.uniform_tensor([3, 4], -1.0, 1.0);
    let conv = Converter::new(NormStrategy::MaxActivation)
        .with_calibration_batch(1000)
        .convert(&net, &calibration)
        .unwrap();
    assert_eq!(conv.lambdas.len(), 2);
}

#[test]
fn zero_calibration_batch_is_clamped_to_one() {
    let mut rng = SeededRng::new(3);
    let net = tiny_mlp(&mut rng);
    let calibration = rng.uniform_tensor([2, 4], -1.0, 1.0);
    // with_calibration_batch(0) silently clamps to 1 rather than erroring.
    let conv = Converter::new(NormStrategy::MaxActivation)
        .with_calibration_batch(0)
        .convert(&net, &calibration)
        .unwrap();
    assert_eq!(conv.lambdas.len(), 2);
}

#[test]
fn reset_mode_is_propagated_to_every_neuron_bank() {
    let mut rng = SeededRng::new(4);
    let net = Network::new(vec![
        Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, true, &mut rng).unwrap()),
        Layer::Relu(Relu::new()),
        Layer::Residual(ResidualBlock::new(2, 2, 1, false, None, &mut rng).unwrap()),
        Layer::GlobalAvgPool(GlobalAvgPool::new()),
        Layer::Flatten(Flatten::new()),
        Layer::Linear(Linear::new(2, 2, true, &mut rng).unwrap()),
    ]);
    let calibration = rng.uniform_tensor([4, 1, 6, 6], -1.0, 1.0);
    let conv = Converter::new(NormStrategy::MaxActivation)
        .with_reset_mode(ResetMode::Zero)
        .convert(&net, &calibration)
        .unwrap();
    for node in conv.snn.nodes() {
        match node {
            tcl_snn::SpikingNode::Spiking(l) => {
                assert_eq!(l.neurons.reset_mode(), ResetMode::Zero)
            }
            tcl_snn::SpikingNode::Residual(b) => {
                assert_eq!(b.ns_neurons.reset_mode(), ResetMode::Zero);
                assert_eq!(b.os_neurons.reset_mode(), ResetMode::Zero);
            }
            _ => {}
        }
    }
}

#[test]
fn bias_currents_survive_conversion() {
    // A network that relies entirely on its bias: zero weights, positive
    // bias. The SNN must still fire (the bias is injected every step).
    let fc =
        Linear::from_parts(Tensor::zeros([2, 2]), Some(Tensor::from_slice(&[0.8, 0.1]))).unwrap();
    let out = Linear::from_parts(
        Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
        None,
    )
    .unwrap();
    let net = Network::new(vec![
        Layer::Linear(fc),
        Layer::Relu(Relu::new()),
        Layer::Linear(out),
    ]);
    let mut rng = SeededRng::new(5);
    let calibration = rng.uniform_tensor([4, 2], -1.0, 1.0);
    let conv = Converter::new(NormStrategy::MaxActivation)
        .convert(&net, &calibration)
        .unwrap();
    let mut snn = conv.snn;
    let x = Tensor::zeros([1, 2]);
    snn.reset();
    let mut counts = [0.0f32; 2];
    for _ in 0..100 {
        let s = snn.step(&x).unwrap();
        counts[0] += s.at(0);
        counts[1] += s.at(1);
    }
    assert!(counts[0] > counts[1], "bias ordering lost: {counts:?}");
    assert!(
        counts[0] > 50.0,
        "strong bias neuron barely fired: {counts:?}"
    );
}

#[test]
fn stats_walker_counts_match_after_folding_any_model() {
    use tcl_models::{Architecture, ModelConfig};
    let mut rng = SeededRng::new(6);
    let cfg = ModelConfig::new((3, 8, 8), 4)
        .with_base_width(2)
        .with_clip_lambda(Some(2.0));
    for arch in [Architecture::ResNet34, Architecture::ResNet20] {
        let net = arch.build(&cfg, &mut rng).unwrap();
        let folded = tcl_core::fold_batch_norm(&net).unwrap();
        let mut stats_net = folded.clone();
        let calibration = rng.uniform_tensor([6, 3, 8, 8], -1.0, 1.0);
        let stats = collect_activation_stats(&mut stats_net, &calibration, 3).unwrap();
        assert_eq!(stats.len(), tcl_core::count_sites(&folded), "{arch}");
    }
}

#[test]
fn membrane_and_spike_readouts_agree_at_long_latency() {
    let mut rng = SeededRng::new(7);
    let net = tiny_mlp(&mut rng);
    let calibration = rng.uniform_tensor([16, 4], -1.0, 1.0);
    let x = rng.uniform_tensor([6, 4], -1.0, 1.0);
    let labels = vec![0, 1, 2, 0, 1, 2];
    let conv = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, &calibration)
        .unwrap();
    let long = 400;
    let spike_cfg = SimConfig::new(vec![long], 6, Readout::SpikeCount).unwrap();
    let mem_cfg = SimConfig::new(vec![long], 6, Readout::Membrane).unwrap();
    let a = tcl_snn::evaluate(&conv.snn.clone(), &x, &labels, &spike_cfg).unwrap();
    let b = tcl_snn::evaluate(&conv.snn.clone(), &x, &labels, &mem_cfg).unwrap();
    // Same converted network, same stimuli: the readouts converge.
    assert!((a.final_accuracy() - b.final_accuracy()).abs() <= 0.2);
}

#[test]
fn converter_skips_dropout_layers() {
    use tcl_models::{Architecture, ModelConfig};
    let mut rng = SeededRng::new(8);
    let cfg = ModelConfig::new((3, 8, 8), 4)
        .with_base_width(2)
        .with_clip_lambda(Some(2.0))
        .with_dropout(Some(0.5));
    let net = Architecture::Cnn6.build(&cfg, &mut rng).unwrap();
    let calibration = rng.uniform_tensor([8, 3, 8, 8], -1.0, 1.0);
    for strategy in [NormStrategy::TrainedClip, NormStrategy::SpikeNorm] {
        let conv = Converter::new(strategy)
            .convert(&net, &calibration)
            .unwrap();
        // Same node structure as the dropout-free network.
        assert!(conv.snn.nodes().iter().all(|n| n.kind_name() != "dropout"));
        // And the SNN still runs.
        let mut snn = conv.snn;
        let x = rng.uniform_tensor([1, 3, 8, 8], -1.0, 1.0);
        snn.reset();
        snn.step(&x).unwrap();
    }
}
