//! Property-based tests of the conversion invariants (DESIGN.md §7).

use proptest::prelude::*;
use tcl_core::{fold_batch_norm, Converter, NormStrategy};
use tcl_nn::layers::{BatchNorm2d, Clip, Conv2d, Linear, Relu};
use tcl_nn::{Layer, Mode, Network};
use tcl_tensor::{SeededRng, Tensor};

/// A random conv→BN→relu→clip→flatten→linear classifier with randomized BN
/// statistics (as if trained).
fn random_bn_net(seed: u64, channels: usize, lambda: f32) -> Network {
    let mut rng = SeededRng::new(seed);
    let conv = Conv2d::new(2, channels, 3, 1, 1, false, &mut rng).unwrap();
    let mut bn = BatchNorm2d::new(channels).unwrap();
    for c in 0..channels {
        bn.running_mean.data_mut()[c] = rng.uniform(-1.0, 1.0);
        bn.running_var.data_mut()[c] = rng.uniform(0.2, 3.0);
        bn.gamma.value.data_mut()[c] = rng.uniform(0.5, 2.0);
        bn.beta.value.data_mut()[c] = rng.uniform(-0.5, 0.5);
    }
    Network::new(vec![
        Layer::Conv2d(conv),
        Layer::BatchNorm2d(bn),
        Layer::Relu(Relu::new()),
        Layer::Clip(Clip::new(lambda)),
        Layer::Flatten(tcl_nn::layers::Flatten::new()),
        Layer::Linear(Linear::new(channels * 36, 3, true, &mut rng).unwrap()),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bn_folding_preserves_outputs_for_random_statistics(
        seed in 0u64..1000,
        channels in 1usize..5,
        lambda in 0.5f32..3.0,
    ) {
        let net = random_bn_net(seed, channels, lambda);
        let mut original = net.clone();
        let mut folded = fold_batch_norm(&net).unwrap();
        let x = SeededRng::new(seed ^ 99).uniform_tensor([2, 2, 6, 6], -1.0, 1.0);
        let a = original.forward(&x, Mode::Eval).unwrap();
        let b = folded.forward(&x, Mode::Eval).unwrap();
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-3);
    }

    #[test]
    fn hidden_spike_rates_approximate_normalized_activations(
        seed in 0u64..500,
        lambda in 0.5f32..2.5,
    ) {
        // Run the first converted layer for T steps: spike counts must be
        // within ±1 of T·clip(a)/λ for every neuron (reset-by-subtraction).
        let mut rng = SeededRng::new(seed);
        let mut fc = Linear::new(4, 6, true, &mut rng).unwrap();
        let net = Network::new(vec![
            Layer::Linear(fc.clone()),
            Layer::Relu(Relu::new()),
            Layer::Clip(Clip::new(lambda)),
            Layer::Linear(Linear::new(6, 2, true, &mut rng).unwrap()),
        ]);
        let calibration = rng.uniform_tensor([16, 4], -1.0, 1.0);
        let conversion = Converter::new(NormStrategy::TrainedClip)
            .convert(&net, &calibration)
            .unwrap();
        let x = rng.uniform_tensor([1, 4], -1.0, 1.0);
        // ANN hidden activation.
        let pre = fc.forward(&x, Mode::Eval).unwrap();
        let act: Vec<f32> = pre.data().iter().map(|v| v.clamp(0.0, lambda)).collect();
        // SNN hidden spikes.
        let mut first = tcl_snn::SpikingNetwork::new(vec![conversion.snn.nodes()[0].clone()]);
        let t = 200usize;
        let mut counts = vec![0.0f32; act.len()];
        for _ in 0..t {
            let s = first.step(&x).unwrap();
            for (c, v) in counts.iter_mut().zip(s.data()) {
                *c += v;
            }
        }
        for (i, (&count, &a)) in counts.iter().zip(&act).enumerate() {
            let expected = t as f32 * a / lambda;
            prop_assert!((count - expected).abs() <= 1.0 + 1e-3,
                "neuron {}: {} spikes vs expected {}", i, count, expected);
        }
    }

    #[test]
    fn norm_factors_scale_inversely_with_lambda(
        seed in 0u64..500,
        lam_a in 0.5f32..1.5,
        factor in 1.1f32..3.0,
    ) {
        // TrainedClip: converting the same network with a larger clip bound
        // λ' = k·λ scales the first layer's weights down by exactly k.
        let mut rng = SeededRng::new(seed);
        let fc = Linear::new(3, 4, true, &mut rng).unwrap();
        let tail = Linear::new(4, 2, true, &mut rng).unwrap();
        let make = |lam: f32| Network::new(vec![
            Layer::Linear(fc.clone()),
            Layer::Relu(Relu::new()),
            Layer::Clip(Clip::new(lam)),
            Layer::Linear(tail.clone()),
        ]);
        let calibration = rng.uniform_tensor([8, 3], -1.0, 1.0);
        let lam_b = lam_a * factor;
        let conv_a = Converter::new(NormStrategy::TrainedClip)
            .convert(&make(lam_a), &calibration).unwrap();
        let conv_b = Converter::new(NormStrategy::TrainedClip)
            .convert(&make(lam_b), &calibration).unwrap();
        let w = |c: &tcl_core::Conversion| -> Tensor {
            match c.snn.nodes().first().unwrap() {
                tcl_snn::SpikingNode::Spiking(l) => match &l.op {
                    tcl_snn::SynapticOp::Linear { weight, .. } => weight.clone(),
                    _ => panic!("expected linear"),
                },
                _ => panic!("expected spiking node"),
            }
        };
        let wa = w(&conv_a);
        let wb = w(&conv_b).scale(factor);
        prop_assert!(wa.max_abs_diff(&wb).unwrap() < 1e-4,
            "Ŵ must scale as 1/λ");
    }

    #[test]
    fn site_quantiles_are_monotone_in_p(
        seed in 0u64..500,
        p_lo in 0.5f32..0.8,
        gap in 0.05f32..0.19,
    ) {
        // Monotonicity of the underlying statistics. (The converter itself
        // additionally maps a zero quantile — common for post-ReLU medians —
        // to a unit norm-factor, so monotonicity is asserted on the stats.)
        let net = random_bn_net(seed, 3, 10.0);
        let calibration = SeededRng::new(seed ^ 7).uniform_tensor([16, 2, 6, 6], -1.0, 1.0);
        let folded = fold_batch_norm(&net).unwrap();
        let mut stats_net = folded.clone();
        let mut stats =
            tcl_core::collect_activation_stats(&mut stats_net, &calibration, 8).unwrap();
        let p_hi = p_lo + gap;
        for s in stats.iter_mut() {
            let lo = s.quantile(p_lo);
            let hi = s.quantile(p_hi);
            prop_assert!(lo <= hi + 1e-5);
            prop_assert!(hi <= s.max() + 1e-5);
        }
    }

    #[test]
    fn zero_quantile_sites_fall_back_to_unit_lambda(
        seed in 0u64..200,
    ) {
        // Converter guard: a percentile that lands on zero activation mass
        // must produce λ = 1, never a division by zero.
        let net = random_bn_net(seed, 2, 10.0);
        let calibration = SeededRng::new(seed ^ 5).uniform_tensor([8, 2, 6, 6], -1.0, 1.0);
        let conv = Converter::new(NormStrategy::Percentile(0.01))
            .convert(&net, &calibration).unwrap();
        for &lam in &conv.lambdas {
            prop_assert!(lam > 0.0 && lam.is_finite());
        }
    }

    #[test]
    fn conversion_emits_unit_thresholds_everywhere(
        seed in 0u64..500,
        channels in 1usize..4,
    ) {
        let net = random_bn_net(seed, channels, 1.5);
        let calibration = SeededRng::new(seed ^ 3).uniform_tensor([8, 2, 6, 6], -1.0, 1.0);
        let conversion = Converter::new(NormStrategy::MaxActivation)
            .convert(&net, &calibration).unwrap();
        prop_assert_eq!(conversion.snn.output_threshold(), Some(1.0));
    }
}
