//! End-to-end check of the per-layer conversion diagnostics: rate coding
//! converges, so the rate-vs-activation residual measured at a long latency
//! window must be smaller than at a short one (the paper's whole latency
//! argument in miniature).

use tcl_core::{diagnose_conversion, Converter, NormStrategy};
use tcl_models::{Architecture, ModelConfig};
use tcl_tensor::SeededRng;

#[test]
fn residual_shrinks_as_latency_grows() {
    let mut rng = SeededRng::new(0xD1A6);
    let cfg = ModelConfig::new((3, 8, 8), 4)
        .with_base_width(2)
        .with_clip_lambda(Some(2.0));
    let net = Architecture::Cnn6.build(&cfg, &mut rng).unwrap();
    let calibration = rng.uniform_tensor([16, 3, 8, 8], -1.0, 1.0);
    let conversion = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, &calibration)
        .unwrap();
    let stimulus = rng.uniform_tensor([2, 3, 8, 8], -1.0, 1.0);

    let diag = diagnose_conversion(&net, &conversion, &stimulus, &[32, 256]).unwrap();
    assert_eq!(diag.windows, vec![32, 256]);
    assert_eq!(diag.sites.len(), conversion.lambdas.len());

    let short = diag.mean_residual(0).unwrap();
    let long = diag.mean_residual(1).unwrap();
    assert!(
        long < short,
        "rate-coding residual must shrink with T: {short:.4} @T=32 vs {long:.4} @T=256"
    );
    // At T=256 the SNN should track the clipped ANN activations closely.
    assert!(long < 0.05, "residual @T=256 too large: {long:.4}");

    // The JSONL artifact form round-trips through the validator.
    for line in diag.to_jsonl().lines() {
        tcl_telemetry::json::validate_line(line)
            .unwrap_or_else(|e| panic!("invalid line {line:?}: {e}"));
    }
}

#[test]
fn residual_shrinks_on_residual_architectures_too() {
    let mut rng = SeededRng::new(0xD1A7);
    let cfg = ModelConfig::new((3, 8, 8), 4)
        .with_base_width(2)
        .with_clip_lambda(Some(2.0));
    let net = Architecture::ResNet20.build(&cfg, &mut rng).unwrap();
    let calibration = rng.uniform_tensor([12, 3, 8, 8], -1.0, 1.0);
    let conversion = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, &calibration)
        .unwrap();
    let stimulus = rng.uniform_tensor([1, 3, 8, 8], -1.0, 1.0);

    let diag = diagnose_conversion(&net, &conversion, &stimulus, &[32, 256]).unwrap();
    assert_eq!(diag.sites.len(), 20); // stem + 9 blocks x 2 + output
    let short = diag.mean_residual(0).unwrap();
    let long = diag.mean_residual(1).unwrap();
    assert!(
        long < short,
        "resnet residual must shrink with T: {short:.4} vs {long:.4}"
    );
}
