//! Hierarchical RAII spans.
//!
//! [`span`] / [`span_with`] return a [`SpanGuard`]; dropping it emits one
//! JSONL record carrying the span's name, id, parent id, thread id, start
//! offset, and wall-clock duration. Parent linkage is a thread-local stack
//! of active span ids; [`propagate_parent`] seeds that linkage on freshly
//! spawned worker threads (`std::thread::scope` workers do not inherit the
//! spawner's thread-locals) so `par.worker` spans nest under the kernel
//! span that fanned them out.

use crate::json;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Monotonic span id allocator (0 is never issued; ids start at 1).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Monotonic telemetry thread id allocator (distinct from OS thread ids so
/// the JSONL stream stays small and stable-looking across runs).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);
/// Process epoch that `start_us` offsets are measured from.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Stack of active span ids on this thread (innermost last).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Parent span id inherited from a spawning thread via
    /// [`propagate_parent`]; used when the local stack is empty.
    static INHERITED_PARENT: Cell<Option<u64>> = const { Cell::new(None) };
    /// This thread's telemetry id, assigned on first use.
    static THREAD_ID: Cell<Option<u64>> = const { Cell::new(None) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    THREAD_ID.with(|cell| match cell.get() {
        Some(id) => id,
        None => {
            // ordering: Relaxed — a unique-id allocator; ids need only be
            // distinct, not ordered with any other memory.
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(id));
            id
        }
    })
}

/// The innermost active span id on this thread, if any.
///
/// Falls back to the parent seeded by [`propagate_parent`] when the local
/// stack is empty, so it can be called on a worker thread before the worker
/// opens its own span. Returns `None` when tracing is disabled.
pub fn current_span_id() -> Option<u64> {
    if !crate::trace_enabled() {
        return None;
    }
    SPAN_STACK
        .with(|stack| stack.borrow().last().copied())
        .or_else(|| INHERITED_PARENT.with(Cell::get))
}

/// Seeds the current thread's parent span linkage with an id captured on
/// the spawning thread via [`current_span_id`].
///
/// Call this first thing inside a `std::thread::scope` worker closure;
/// spans opened on the worker then report `parent` correctly. `None` is a
/// no-op, so callers can pass the captured value through unconditionally.
pub fn propagate_parent(parent: Option<u64>) {
    if let Some(id) = parent {
        INHERITED_PARENT.with(|cell| cell.set(Some(id)));
    }
}

/// A span that is actually being recorded.
struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_us: u64,
    attrs: Vec<(&'static str, f64)>,
}

/// RAII guard for one span; emits a single JSONL record on drop.
///
/// When tracing is disabled the guard is inert: no id allocation, no clock
/// read, no emission.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

/// Opens a span named `name`. See [`span_with`] to attach attributes.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, Vec::new)
}

/// Opens a span named `name` with numeric attributes.
///
/// `attrs` is only invoked when tracing is enabled, so building the
/// attribute vector costs nothing on the disabled path.
#[inline]
pub fn span_with(
    name: &'static str,
    attrs: impl FnOnce() -> Vec<(&'static str, f64)>,
) -> SpanGuard {
    if !crate::trace_enabled() {
        return SpanGuard { active: None };
    }
    // ordering: Relaxed — unique-id allocator; span parentage is carried
    // by the thread-local stack, not by this atomic.
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK
        .with(|stack| stack.borrow().last().copied())
        .or_else(|| INHERITED_PARENT.with(Cell::get));
    SPAN_STACK.with(|stack| stack.borrow_mut().push(id));
    let start = Instant::now();
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            id,
            parent,
            start,
            start_us: start.duration_since(epoch()).as_micros() as u64,
            attrs: attrs(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_us = active.start.elapsed().as_micros() as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards drop in LIFO order in well-formed code; retain() keeps
            // the stack consistent even if a guard is dropped out of order.
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != active.id);
            }
        });
        let mut line = String::with_capacity(128);
        line.push_str("{\"type\":\"span\",\"name\":\"");
        json::escape_into(active.name, &mut line);
        line.push_str(&format!(
            "\",\"id\":{},\"parent\":{},\"thread\":{},\"start_us\":{},\"dur_us\":{}",
            active.id,
            match active.parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            },
            thread_id(),
            active.start_us,
            dur_us,
        ));
        if !active.attrs.is_empty() {
            line.push_str(",\"attrs\":{");
            for (i, (key, value)) in active.attrs.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('"');
                json::escape_into(key, &mut line);
                line.push_str("\":");
                json::number_into(*value, &mut line);
            }
            line.push('}');
        }
        line.push('}');
        crate::sink::emit_line(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{with_captured, with_disabled};

    #[test]
    fn disabled_spans_emit_nothing() {
        let (_, emitted) = with_disabled(|| {
            let _outer = span("outer");
            let _inner = span_with("inner", || vec![("k", 1.0)]);
        });
        assert_eq!(emitted, 0);
    }

    #[test]
    fn spans_nest_and_emit_valid_json() {
        let (_, lines) = with_captured(|| {
            let _outer = span("outer");
            let _inner = span_with("inner", || vec![("m", 64.0), ("n", 16.0)]);
        });
        assert_eq!(lines.len(), 2);
        for line in &lines {
            crate::json::validate_line(line).expect("span line must be valid JSON");
        }
        // Guards drop innermost-first, so "inner" is emitted first.
        assert!(lines[0].contains("\"name\":\"inner\""));
        assert!(lines[0].contains("\"attrs\":{\"m\":64.0,\"n\":16.0}"));
        assert!(lines[1].contains("\"name\":\"outer\""));
        assert!(lines[1].contains("\"parent\":null"));
        let outer_id: u64 = field(&lines[1], "\"id\":");
        let inner_parent: u64 = field(&lines[0], "\"parent\":");
        assert_eq!(inner_parent, outer_id);
    }

    #[test]
    fn propagated_parent_links_worker_spans() {
        let (ids, lines) = with_captured(|| {
            let outer = span("kernel");
            let parent = current_span_id();
            assert!(parent.is_some());
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    propagate_parent(parent);
                    let _w = span("worker");
                });
            });
            drop(outer);
            parent
        });
        let kernel_id = ids.unwrap();
        let worker = lines
            .iter()
            .find(|l| l.contains("\"name\":\"worker\""))
            .expect("worker span emitted");
        assert_eq!(field::<u64>(worker, "\"parent\":"), kernel_id);
    }

    fn field<T: std::str::FromStr>(line: &str, key: &str) -> T
    where
        T::Err: std::fmt::Debug,
    {
        let start = line.find(key).expect("key present") + key.len();
        let rest = &line[start..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().expect("numeric field")
    }
}
