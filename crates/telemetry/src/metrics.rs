//! Process-wide metrics registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! All update functions are gated on [`crate::metrics_enabled`]; the
//! disabled path is one relaxed atomic load. The registry is a
//! `Mutex<BTreeMap>` keyed by metric name — updates happen at coarse
//! granularity (per kernel call, per timestep, per epoch), never per
//! element, so a mutex is ample.
//!
//! [`FixedHistogram`] is also exported as a standalone value type so other
//! crates (e.g. `tcl_snn::trace`) can aggregate distributions with the same
//! representation the registry uses.

use crate::json;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// A histogram over `[0, upper)` with `bins` equal-width buckets.
///
/// Values below zero clamp into the first bucket; values at or above
/// `upper` clamp into the last, so every recorded sample is counted. The
/// exact mean and max are tracked alongside the bucketed counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    upper: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
}

impl FixedHistogram {
    /// Creates an empty histogram over `[0, upper)` with `bins` buckets.
    ///
    /// `upper` must be positive and finite; `bins` must be nonzero.
    pub fn new(upper: f64, bins: usize) -> Self {
        assert!(upper > 0.0 && upper.is_finite(), "upper must be positive");
        assert!(bins > 0, "bins must be nonzero");
        Self {
            upper,
            counts: vec![0; bins],
            total: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let bins = self.counts.len();
        let idx = if value <= 0.0 {
            0
        } else {
            (((value / self.upper) * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest recorded sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all recorded samples (0.0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded distribution, at
    /// bucket resolution: the rank-`⌈q·n⌉` sample is located in its bucket
    /// and its value estimated by linear interpolation across that bucket,
    /// then clamped to the exact recorded maximum (so `quantile(1.0) ==
    /// max()` exactly, and a p99 never reports a value no sample reached).
    ///
    /// Returns 0.0 when empty. `q` outside `[0, 1]` is clamped.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let width = self.upper / self.counts.len() as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Interpolate within bucket i: the (rank - seen)-th of its
                // c samples, assuming uniform spread across the bucket.
                let frac = (rank - seen) as f64 / c as f64;
                let value = (i as f64 + frac) * width;
                return value.min(self.max());
            }
            seen += c;
        }
        self.max()
    }

    /// Median ([`FixedHistogram::quantile`] at 0.5).
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 99th percentile ([`FixedHistogram::quantile`] at 0.99).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Upper bound of the bucketed range.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Per-bucket counts (bucket `i` covers `[i, i+1) * upper / bins`).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Merges another histogram with identical geometry into this one.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert_eq!(self.upper, other.upper, "histogram geometry mismatch");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram geometry mismatch"
        );
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    fn body_json(&self, out: &mut String) {
        out.push_str("\"total\":");
        out.push_str(&self.total.to_string());
        out.push_str(",\"mean\":");
        json::number_into(self.mean(), out);
        out.push_str(",\"max\":");
        json::number_into(self.max(), out);
        out.push_str(",\"upper\":");
        json::number_into(self.upper, out);
        out.push_str(",\"counts\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push(']');
    }
}

enum Metric {
    Counter(u64),
    Gauge { last: f64, min: f64, max: f64 },
    Hist(FixedHistogram),
}

static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();

fn registry() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Adds `delta` to the counter `name` (creating it at zero).
///
/// No-op unless `TCL_METRICS` is set. Mixed-kind reuse of a name keeps the
/// first kind and ignores later updates of other kinds.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::metrics_enabled() {
        return;
    }
    let mut reg = registry();
    if let Metric::Counter(v) = reg.entry(name.to_string()).or_insert(Metric::Counter(0)) {
        *v += delta;
    }
}

/// Sets the gauge `name`, tracking last/min/max across the run.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::metrics_enabled() {
        return;
    }
    let mut reg = registry();
    if let Metric::Gauge { last, min, max } = reg.entry(name.to_string()).or_insert(Metric::Gauge {
        last: value,
        min: value,
        max: value,
    }) {
        *last = value;
        if value < *min {
            *min = value;
        }
        if value > *max {
            *max = value;
        }
    }
}

/// Sets the indexed gauge `name[idx]` — e.g. per-layer λ as
/// `convert.lambda[3]`.
pub fn gauge_set_indexed(name: &str, idx: usize, value: f64) {
    if !crate::metrics_enabled() {
        return;
    }
    gauge_set(&format!("{name}[{idx}]"), value);
}

/// Records `value` into the histogram `name`.
///
/// The geometry (`upper`, `bins`) is fixed by the first record for a given
/// name; later calls reuse it regardless of the arguments passed.
pub fn hist_record(name: &str, value: f64, upper: f64, bins: usize) {
    if !crate::metrics_enabled() {
        return;
    }
    let mut reg = registry();
    if let Metric::Hist(h) = reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Hist(FixedHistogram::new(upper, bins)))
    {
        h.record(value);
    }
}

/// Current value of the counter `name`, if metrics are enabled and the name
/// is registered as a counter.
///
/// Counters are process-global and monotonic; callers measuring one phase
/// (e.g. the engine bench comparing fixed-T vs early-exit synops) snapshot
/// the value before and after and take the difference.
pub fn counter_value(name: &str) -> Option<u64> {
    if !crate::metrics_enabled() {
        return None;
    }
    match registry().get(name) {
        Some(Metric::Counter(v)) => Some(*v),
        _ => None,
    }
}

/// One metric's point-in-time state, as captured by [`metrics_snapshot`].
///
/// This is the read surface the `tcl-obs` HTTP exporter serves `/metrics`
/// and `/summary` from; it is deliberately a plain value (no registry
/// references) so rendering happens outside the registry lock.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// A monotonic counter.
    Counter {
        /// Metric name (indexed gauges carry their `[i]` suffix).
        name: String,
        /// Current value.
        value: u64,
    },
    /// A last/min/max gauge.
    Gauge {
        /// Metric name.
        name: String,
        /// Most recently set value.
        last: f64,
        /// Smallest value seen this run.
        min: f64,
        /// Largest value seen this run.
        max: f64,
    },
    /// A fixed-bucket histogram (cloned, so quantiles can be computed
    /// without holding the registry lock).
    Hist {
        /// Metric name.
        name: String,
        /// The histogram contents.
        hist: FixedHistogram,
    },
}

impl MetricSnapshot {
    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. }
            | MetricSnapshot::Gauge { name, .. }
            | MetricSnapshot::Hist { name, .. } => name,
        }
    }
}

/// Captures the current state of every registered metric, in name order.
///
/// Unlike the update functions this is **not** gated on
/// [`crate::metrics_enabled`]: it reads whatever the registry holds (an
/// empty `Vec` when metrics were never enabled), because the exporter must
/// be able to answer scrapes deterministically regardless of gating.
pub fn metrics_snapshot() -> Vec<MetricSnapshot> {
    let reg = registry();
    reg.iter()
        .map(|(name, metric)| match metric {
            Metric::Counter(v) => MetricSnapshot::Counter {
                name: name.clone(),
                value: *v,
            },
            Metric::Gauge { last, min, max } => MetricSnapshot::Gauge {
                name: name.clone(),
                last: *last,
                min: *min,
                max: *max,
            },
            Metric::Hist(h) => MetricSnapshot::Hist {
                name: name.clone(),
                hist: h.clone(),
            },
        })
        .collect()
}

/// Renders the registry as a human-readable end-of-run table.
///
/// Returns an empty string when nothing was recorded.
pub fn render_summary() -> String {
    let reg = registry();
    if reg.is_empty() {
        return String::new();
    }
    let mut out = String::from("== telemetry summary ==\n");
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(v) => {
                out.push_str(&format!("  counter {name:<32} {v}\n"));
            }
            Metric::Gauge { last, min, max } => {
                out.push_str(&format!(
                    "  gauge   {name:<32} last={last:.6} min={min:.6} max={max:.6}\n"
                ));
            }
            Metric::Hist(h) => {
                out.push_str(&format!(
                    "  hist    {name:<32} n={} mean={:.6} p50={:.6} p99={:.6} max={:.6}\n",
                    h.total(),
                    h.mean(),
                    h.p50(),
                    h.p99(),
                    h.max(),
                ));
            }
        }
    }
    out.pop(); // trailing newline
    out
}

/// Mirrors the registry into the JSONL trace stream (one event per metric).
///
/// Only meaningful when tracing is enabled; [`crate::emit_summary`] calls
/// this before flushing.
pub fn write_metrics_snapshot() {
    if !crate::trace_enabled() {
        return;
    }
    // Serialize under the lock, emit after releasing it (emit_line takes the
    // sink lock; keeping lock scopes disjoint avoids ordering hazards).
    let lines: Vec<String> = {
        let reg = registry();
        reg.iter()
            .map(|(name, metric)| {
                let mut line = String::with_capacity(96);
                match metric {
                    Metric::Counter(v) => {
                        line.push_str("{\"type\":\"counter\",\"name\":\"");
                        json::escape_into(name, &mut line);
                        line.push_str("\",\"value\":");
                        line.push_str(&v.to_string());
                        line.push('}');
                    }
                    Metric::Gauge { last, min, max } => {
                        line.push_str("{\"type\":\"gauge\",\"name\":\"");
                        json::escape_into(name, &mut line);
                        line.push_str("\",\"last\":");
                        json::number_into(*last, &mut line);
                        line.push_str(",\"min\":");
                        json::number_into(*min, &mut line);
                        line.push_str(",\"max\":");
                        json::number_into(*max, &mut line);
                        line.push('}');
                    }
                    Metric::Hist(h) => {
                        line.push_str("{\"type\":\"hist\",\"name\":\"");
                        json::escape_into(name, &mut line);
                        line.push_str("\",");
                        h.body_json(&mut line);
                        line.push('}');
                    }
                }
                line
            })
            .collect()
    };
    for line in lines {
        crate::sink::emit_line(line);
    }
}

/// Clears the registry (test support).
pub(crate) fn reset() {
    registry().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{reset_metrics, with_captured, with_disabled};

    #[test]
    fn histogram_buckets_clamp_and_merge() {
        let mut h = FixedHistogram::new(1.0, 4);
        for v in [-0.5, 0.1, 0.3, 0.6, 0.99, 1.7] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 2]);
        assert_eq!(h.total(), 6);
        assert!((h.max() - 1.7).abs() < 1e-12);
        let mut other = FixedHistogram::new(1.0, 4);
        other.record(0.4);
        h.merge(&other);
        assert_eq!(h.counts(), &[2, 2, 1, 2]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn quantiles_interpolate_and_clamp_to_max() {
        let mut h = FixedHistogram::new(10.0, 10);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        for v in [1.5, 2.5, 3.5, 4.5] {
            h.record(v);
        }
        // Rank 2 of 4 at q=0.5 lands in bucket [2,3): one sample there.
        assert!((h.p50() - 3.0).abs() < 1e-9, "p50 = {}", h.p50());
        // p99 → rank 4, bucket [4,5), clamped to the exact max 4.5.
        assert!((h.p99() - 4.5).abs() < 1e-9, "p99 = {}", h.p99());
        assert_eq!(h.quantile(1.0), h.max());
        assert!((h.sum() - 12.0).abs() < 1e-9);
        // A heavy single bucket interpolates within it.
        let mut u = FixedHistogram::new(1.0, 1);
        for _ in 0..100 {
            u.record(0.9);
        }
        assert!(u.p50() <= 0.9 && u.p50() > 0.0);
        assert_eq!(u.quantile(-1.0), u.quantile(0.0), "q clamps");
    }

    #[test]
    fn snapshot_mirrors_registry_without_gating() {
        let (snaps, _lines) = with_captured(|| {
            reset_metrics();
            counter_add("t.snap_counter", 7);
            gauge_set("t.snap_gauge", 2.0);
            gauge_set("t.snap_gauge", -1.0);
            hist_record("t.snap_hist", 0.5, 1.0, 4);
            metrics_snapshot()
        });
        assert!(snaps.iter().any(|s| matches!(
            s,
            MetricSnapshot::Counter { name, value: 7 } if name == "t.snap_counter"
        )));
        assert!(snaps.iter().any(|s| matches!(
            s,
            MetricSnapshot::Gauge { name, last, min, max }
                if name == "t.snap_gauge" && *last == -1.0 && *min == -1.0 && *max == 2.0
        )));
        assert!(snaps.iter().any(
            |s| matches!(s, MetricSnapshot::Hist { name, hist } if name == "t.snap_hist" && hist.total() == 1)
        ));
        // Name order (BTreeMap order) is deterministic.
        let names: Vec<&str> = snaps.iter().map(MetricSnapshot::name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let (_, emitted) = with_disabled(|| {
            reset_metrics();
            counter_add("t.counter", 3);
            gauge_set("t.gauge", 1.0);
            hist_record("t.hist", 0.5, 1.0, 8);
            assert_eq!(render_summary(), "");
        });
        assert_eq!(emitted, 0);
    }

    #[test]
    fn counter_value_reads_back_counters_only() {
        let (_, _lines) = with_captured(|| {
            reset_metrics();
            assert_eq!(counter_value("t.readback"), None);
            counter_add("t.readback", 4);
            counter_add("t.readback", 2);
            assert_eq!(counter_value("t.readback"), Some(6));
            gauge_set("t.not_a_counter", 1.0);
            assert_eq!(counter_value("t.not_a_counter"), None);
        });
        let (_, emitted) = with_disabled(|| {
            assert_eq!(counter_value("t.readback"), None);
        });
        assert_eq!(emitted, 0);
    }

    #[test]
    fn registry_updates_summarize_and_snapshot() {
        let (_, lines) = with_captured(|| {
            reset_metrics();
            counter_add("t.spikes", 2);
            counter_add("t.spikes", 3);
            gauge_set("t.lambda", 2.0);
            gauge_set("t.lambda", 0.5);
            gauge_set_indexed("t.lambda_site", 1, 4.0);
            hist_record("t.rate", 0.25, 1.0, 4);
            let summary = render_summary();
            assert!(summary.contains("t.spikes"));
            assert!(summary.contains("5"));
            assert!(summary.contains("t.lambda_site[1]"));
            write_metrics_snapshot();
        });
        assert_eq!(lines.len(), 4);
        for line in &lines {
            crate::json::validate_line(line).expect("snapshot line must be valid JSON");
        }
        assert!(lines.iter().any(|l| l.contains("\"type\":\"counter\"")
            && l.contains("\"t.spikes\"")
            && l.contains("\"value\":5")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"type\":\"gauge\"") && l.contains("\"min\":0.5")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"type\":\"hist\"") && l.contains("\"counts\":[0,1,0,0]")));
    }
}
