//! The JSONL event sink: stderr, an append-only file, or an in-memory
//! capture buffer (tests).
//!
//! Destination resolution happens once, from the value of `TCL_TRACE`:
//! `1`/`true`-ish values stream to stderr, anything else is treated as a
//! file path. Every emitted line is a complete JSON object; a global mutex
//! serializes writers so lines from concurrent worker threads never
//! interleave.
//!
//! ## Bounded growth (`TCL_TRACE_MAX_MB`)
//!
//! File sinks append one line per span on hot paths, so a long run can
//! write gigabytes. When `TCL_TRACE_MAX_MB` is set to a positive integer,
//! the file destination stops writing once that many mebibytes have been
//! appended *by this process* and counts every suppressed line in
//! [`events_dropped`]; [`crate::emit_summary`] surfaces the count and
//! appends a final `{"type":"dropped",...}` marker (exempt from the cap)
//! so post-hoc analysis knows the trace is a prefix, not the whole run.

use crate::json;
use std::fs::OpenOptions;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Where JSONL events go.
enum Destination {
    /// Stream to stderr (`TCL_TRACE=1`).
    Stderr,
    /// Append to a file (`TCL_TRACE=<path>`); errors fall back to stderr.
    File {
        file: std::fs::File,
        /// Bytes appended by this process (lines + newlines).
        written: u64,
        /// `TCL_TRACE_MAX_MB` in bytes; `u64::MAX` when uncapped.
        cap: u64,
    },
    /// In-memory buffer drained by `test_support::with_captured`.
    Capture(Vec<String>),
}

static SINK: OnceLock<Mutex<Destination>> = OnceLock::new();
/// Count of JSONL events emitted since process start (all destinations).
static EVENTS: AtomicU64 = AtomicU64::new(0);
/// Count of JSONL events suppressed by the `TCL_TRACE_MAX_MB` cap.
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn sink() -> MutexGuard<'static, Destination> {
    SINK.get_or_init(|| Mutex::new(destination_from_env()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Resolves `TCL_TRACE_MAX_MB` once: a positive integer number of MiB, or
/// effectively-unlimited on unset/invalid values (invalid values warn).
fn cap_from_env() -> u64 {
    match std::env::var("TCL_TRACE_MAX_MB") {
        Err(_) => u64::MAX,
        Ok(v) if v.is_empty() => u64::MAX,
        Ok(v) => match v.parse::<u64>() {
            Ok(mb) if mb > 0 => mb.saturating_mul(1024 * 1024),
            _ => {
                eprintln!("[telemetry] ignoring invalid TCL_TRACE_MAX_MB={v:?} (want MiB > 0)");
                u64::MAX
            }
        },
    }
}

fn destination_from_env() -> Destination {
    let value = std::env::var("TCL_TRACE").unwrap_or_default();
    match value.as_str() {
        "" | "1" | "true" | "on" => Destination::Stderr,
        path => match OpenOptions::new().create(true).append(true).open(path) {
            Ok(file) => Destination::File {
                file,
                written: 0,
                cap: cap_from_env(),
            },
            Err(e) => {
                eprintln!("[telemetry] cannot open TCL_TRACE={path}: {e}; using stderr");
                Destination::Stderr
            }
        },
    }
}

/// Emits one already-serialized JSONL line, honoring the size cap.
pub(crate) fn emit_line(line: String) {
    emit_line_inner(line, false);
}

/// Emits one line even past the size cap (the end-of-run dropped-events
/// marker must reach the file precisely when the cap has been hit).
pub(crate) fn emit_line_unbounded(line: String) {
    emit_line_inner(line, true);
}

fn emit_line_inner(line: String, exempt_from_cap: bool) {
    match &mut *sink() {
        Destination::Stderr => eprintln!("{line}"),
        Destination::File { file, written, cap } => {
            let bytes = line.len() as u64 + 1;
            if !exempt_from_cap && written.saturating_add(bytes) > *cap {
                // ordering: Relaxed — a statistics counter; only the
                // eventual total matters, nothing synchronizes with it.
                DROPPED.fetch_add(1, Ordering::Relaxed);
                return;
            }
            *written += bytes;
            if writeln!(file, "{line}").is_err() {
                eprintln!("{line}");
            }
        }
        Destination::Capture(buf) => buf.push(line),
    }
    // ordering: Relaxed — a statistics counter; only the eventual total
    // matters, nothing synchronizes with it.
    EVENTS.fetch_add(1, Ordering::Relaxed);
}

/// Number of JSONL events emitted since process start.
///
/// The disabled-path guarantee is that instrumented code emits **zero**
/// events while `TCL_TRACE`/`TCL_METRICS` are unset; tests assert it by
/// differencing this counter.
pub fn events_emitted() -> u64 {
    // ordering: Relaxed — counter read for reporting; tests that difference
    // it serialize via test_support's lock, not via this atomic.
    EVENTS.load(Ordering::Relaxed)
}

/// Number of JSONL events suppressed by the `TCL_TRACE_MAX_MB` file-sink
/// cap since process start. Zero unless a cap was configured and hit.
pub fn events_dropped() -> u64 {
    // ordering: Relaxed — statistics counter, reporting only.
    DROPPED.load(Ordering::Relaxed)
}

/// Flushes the sink (meaningful for file destinations).
pub fn flush() {
    if let Destination::File { file, .. } = &mut *sink() {
        let _ = file.flush();
    }
}

/// Routes a human-readable progress line through the telemetry layer.
///
/// The line is always printed to stderr as `[component] message` — callers
/// keep their own verbosity gating — and, when tracing is enabled, a
/// structured `{"type":"log",...}` event is mirrored into the JSONL stream.
pub fn log(component: &str, message: &str) {
    eprintln!("[{component}] {message}");
    if crate::trace_enabled() {
        let mut line = String::with_capacity(64 + message.len());
        line.push_str("{\"type\":\"log\",\"component\":\"");
        json::escape_into(component, &mut line);
        line.push_str("\",\"message\":\"");
        json::escape_into(message, &mut line);
        line.push_str("\"}");
        emit_line(line);
    }
}

/// Switches the sink to an empty in-memory capture buffer.
pub(crate) fn begin_capture() {
    *sink() = Destination::Capture(Vec::new());
}

/// Restores the environment-resolved sink and returns the captured lines.
pub(crate) fn end_capture() -> Vec<String> {
    let mut guard = sink();
    let captured = match &mut *guard {
        Destination::Capture(buf) => std::mem::take(buf),
        _ => Vec::new(),
    };
    *guard = destination_from_env();
    captured
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_lines_and_counts_events() {
        let (_, lines) = crate::test_support::with_captured(|| {
            let before = events_emitted();
            emit_line("{\"type\":\"log\",\"component\":\"t\",\"message\":\"x\"}".to_string());
            assert_eq!(events_emitted() - before, 1);
        });
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"type\":\"log\""));
    }

    #[test]
    fn file_cap_suppresses_and_counts_overflow() {
        // Exercise the capped File destination directly (the global sink is
        // env-resolved once per process, so tests drive the enum).
        let path = std::env::temp_dir().join(format!(
            "tcl_sink_cap_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open temp sink");
        let mut dest = Destination::File {
            file,
            written: 0,
            cap: 16,
        };
        let long = "{\"type\":\"log\",\"component\":\"t\",\"message\":\"aaaaaaaa\"}";
        let short = "{\"a\":1}"; // 7 bytes + newline = 8 per line
        let write = |line: &str, dest: &mut Destination| match dest {
            Destination::File { file, written, cap } => {
                let bytes = line.len() as u64 + 1;
                if written.saturating_add(bytes) > *cap {
                    return false;
                }
                *written += bytes;
                writeln!(file, "{line}").expect("write");
                true
            }
            _ => unreachable!(),
        };
        assert!(!write(long, &mut dest), "over-cap line suppressed");
        assert!(write(short, &mut dest), "short line fits");
        assert!(write(short, &mut dest), "second short line fits");
        assert!(!write(short, &mut dest), "cap reached");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cap_parser_accepts_mib_and_rejects_garbage() {
        // cap_from_env reads the real environment; exercise the parse rules
        // through a local copy of its match arm semantics instead of
        // mutating process-global env vars under parallel tests.
        let parse = |v: &str| -> u64 {
            match v.parse::<u64>() {
                Ok(mb) if mb > 0 => mb.saturating_mul(1024 * 1024),
                _ => u64::MAX,
            }
        };
        assert_eq!(parse("2"), 2 * 1024 * 1024);
        assert_eq!(parse("0"), u64::MAX);
        assert_eq!(parse("nope"), u64::MAX);
        assert_eq!(parse(&u64::MAX.to_string()), u64::MAX);
    }
}
