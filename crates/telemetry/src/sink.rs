//! The JSONL event sink: stderr, an append-only file, or an in-memory
//! capture buffer (tests).
//!
//! Destination resolution happens once, from the value of `TCL_TRACE`:
//! `1`/`true`-ish values stream to stderr, anything else is treated as a
//! file path. Every emitted line is a complete JSON object; a global mutex
//! serializes writers so lines from concurrent worker threads never
//! interleave.

use crate::json;
use std::fs::OpenOptions;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Where JSONL events go.
enum Destination {
    /// Stream to stderr (`TCL_TRACE=1`).
    Stderr,
    /// Append to a file (`TCL_TRACE=<path>`); errors fall back to stderr.
    File(std::fs::File),
    /// In-memory buffer drained by `test_support::with_captured`.
    Capture(Vec<String>),
}

static SINK: OnceLock<Mutex<Destination>> = OnceLock::new();
/// Count of JSONL events emitted since process start (all destinations).
static EVENTS: AtomicU64 = AtomicU64::new(0);

fn sink() -> MutexGuard<'static, Destination> {
    SINK.get_or_init(|| Mutex::new(destination_from_env()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn destination_from_env() -> Destination {
    let value = std::env::var("TCL_TRACE").unwrap_or_default();
    match value.as_str() {
        "" | "1" | "true" | "on" => Destination::Stderr,
        path => match OpenOptions::new().create(true).append(true).open(path) {
            Ok(file) => Destination::File(file),
            Err(e) => {
                eprintln!("[telemetry] cannot open TCL_TRACE={path}: {e}; using stderr");
                Destination::Stderr
            }
        },
    }
}

/// Emits one already-serialized JSONL line.
pub(crate) fn emit_line(line: String) {
    // ordering: Relaxed — a statistics counter; only the eventual total
    // matters, nothing synchronizes with it.
    EVENTS.fetch_add(1, Ordering::Relaxed);
    match &mut *sink() {
        Destination::Stderr => eprintln!("{line}"),
        Destination::File(file) => {
            if writeln!(file, "{line}").is_err() {
                eprintln!("{line}");
            }
        }
        Destination::Capture(buf) => buf.push(line),
    }
}

/// Number of JSONL events emitted since process start.
///
/// The disabled-path guarantee is that instrumented code emits **zero**
/// events while `TCL_TRACE`/`TCL_METRICS` are unset; tests assert it by
/// differencing this counter.
pub fn events_emitted() -> u64 {
    // ordering: Relaxed — counter read for reporting; tests that difference
    // it serialize via test_support's lock, not via this atomic.
    EVENTS.load(Ordering::Relaxed)
}

/// Flushes the sink (meaningful for file destinations).
pub fn flush() {
    if let Destination::File(file) = &mut *sink() {
        let _ = file.flush();
    }
}

/// Routes a human-readable progress line through the telemetry layer.
///
/// The line is always printed to stderr as `[component] message` — callers
/// keep their own verbosity gating — and, when tracing is enabled, a
/// structured `{"type":"log",...}` event is mirrored into the JSONL stream.
pub fn log(component: &str, message: &str) {
    eprintln!("[{component}] {message}");
    if crate::trace_enabled() {
        let mut line = String::with_capacity(64 + message.len());
        line.push_str("{\"type\":\"log\",\"component\":\"");
        json::escape_into(component, &mut line);
        line.push_str("\",\"message\":\"");
        json::escape_into(message, &mut line);
        line.push_str("\"}");
        emit_line(line);
    }
}

/// Switches the sink to an empty in-memory capture buffer.
pub(crate) fn begin_capture() {
    *sink() = Destination::Capture(Vec::new());
}

/// Restores the environment-resolved sink and returns the captured lines.
pub(crate) fn end_capture() -> Vec<String> {
    let mut guard = sink();
    let captured = match &mut *guard {
        Destination::Capture(buf) => std::mem::take(buf),
        _ => Vec::new(),
    };
    *guard = destination_from_env();
    captured
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_lines_and_counts_events() {
        let (_, lines) = crate::test_support::with_captured(|| {
            let before = events_emitted();
            emit_line("{\"type\":\"log\",\"component\":\"t\",\"message\":\"x\"}".to_string());
            assert_eq!(events_emitted() - before, 1);
        });
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"type\":\"log\""));
    }
}
