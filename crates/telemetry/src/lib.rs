//! # tcl-telemetry
//!
//! Structured, near-zero-cost-when-disabled telemetry for the TCL
//! ANN-to-SNN stack: hierarchical spans around the compute hot paths,
//! a process-wide metrics registry, and a JSONL event sink.
//!
//! The paper's whole argument is about *where* conversion error comes from
//! — per-layer norm-factors λ, clipping rates, and IF firing rates that
//! should track the clipped ANN activation. This crate makes those
//! quantities first-class observables instead of ad-hoc `println!`s.
//!
//! ## Gating
//!
//! Everything is off by default and gated by two environment variables,
//! each read **once** per process:
//!
//! * `TCL_TRACE` — span/log/event emission. `1`/`true` streams JSONL to
//!   stderr; any other non-empty value is treated as a file path to append
//!   JSONL lines to.
//! * `TCL_METRICS` — metrics registry updates (counters, gauges,
//!   histograms) and the end-of-run summary. Same value convention; the
//!   summary itself is human-readable text on stderr.
//!
//! A third variable bounds file-sink growth: `TCL_TRACE_MAX_MB=<MiB>`
//! stops appending once the cap is reached and surfaces the number of
//! dropped events through [`events_dropped`] and [`emit_summary`].
//!
//! When a variable is unset the corresponding fast path is a single relaxed
//! atomic load and a branch: no allocation, no locking, no clock reads, and
//! — critically for the kernels — no change to any computed float. The
//! determinism proptests in `tcl-tensor` assert the bitwise-identity half
//! of that contract; [`events_emitted`] exposes the zero-events half.
//!
//! ## Spans
//!
//! [`span`] returns an RAII guard; dropping it emits one JSONL record with
//! the span's name, id, parent id, thread, start offset, and wall time.
//! Parent linkage is a thread-local stack, and [`propagate_parent`] carries
//! the current span across `std::thread::scope` fan-outs so worker spans
//! nest under the kernel that spawned them (see `tcl_tensor::par`).
//!
//! ## Metrics
//!
//! [`counter_add`], [`gauge_set`] / [`gauge_set_indexed`], and
//! [`hist_record`] update a global registry keyed by static names
//! (indexed gauges append `[i]`, e.g. per-layer λ as `convert.lambda[3]`).
//! [`render_summary`] produces the human-readable end-of-run table;
//! [`write_metrics_snapshot`] mirrors the registry into the JSONL stream.
//!
//! ## JSONL schema
//!
//! One object per line, discriminated by `"type"`:
//!
//! ```json
//! {"type":"span","name":"matmul","id":7,"parent":6,"thread":2,"start_us":120,"dur_us":340,"attrs":{"m":64,"k":128,"n":64}}
//! {"type":"log","component":"trainer","message":"epoch 0 ..."}
//! {"type":"counter","name":"snn.spikes","value":10231}
//! {"type":"gauge","name":"convert.lambda[0]","last":2.0,"min":2.0,"max":2.0}
//! {"type":"hist","name":"snn.firing_rate","total":512,"mean":0.31,"max":0.9,"upper":1.0,"counts":[...]}
//! ```
//!
//! [`json::validate_line`] is a minimal JSON parser used by tests and the
//! CI smoke binary to check well-formedness without external crates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
mod metrics;
mod sink;
mod span;

pub use metrics::{
    counter_add, counter_value, gauge_set, gauge_set_indexed, hist_record, metrics_snapshot,
    render_summary, write_metrics_snapshot, FixedHistogram, MetricSnapshot,
};
pub use sink::{events_dropped, events_emitted, flush, log};
pub use span::{current_span_id, propagate_parent, span, span_with, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Tracing flag, initialized once from `TCL_TRACE`.
static TRACE: OnceLock<AtomicBool> = OnceLock::new();
/// Metrics flag, initialized once from `TCL_METRICS`.
static METRICS: OnceLock<AtomicBool> = OnceLock::new();

fn env_flag(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => !v.is_empty() && v != "0" && v != "false" && v != "off",
        Err(_) => false,
    }
}

fn trace_flag() -> &'static AtomicBool {
    TRACE.get_or_init(|| AtomicBool::new(env_flag("TCL_TRACE")))
}

fn metrics_flag() -> &'static AtomicBool {
    METRICS.get_or_init(|| AtomicBool::new(env_flag("TCL_METRICS")))
}

/// Whether span/log/event tracing is enabled (`TCL_TRACE`).
///
/// One relaxed atomic load; this is the instrumented kernels' fast path.
#[inline]
pub fn trace_enabled() -> bool {
    // ordering: Relaxed — a monotonic on/off hint; no data is published
    // through this flag, and a stale read only delays the first event.
    trace_flag().load(Ordering::Relaxed)
}

/// Whether metrics recording is enabled (`TCL_METRICS`).
#[inline]
pub fn metrics_enabled() -> bool {
    // ordering: Relaxed — same as trace_enabled: a pure gating hint.
    metrics_flag().load(Ordering::Relaxed)
}

/// Prints the end-of-run metrics summary to stderr when metrics are
/// enabled, and mirrors the registry into the trace stream when tracing is
/// enabled. Call once at the end of a run (the bench bins do).
///
/// When the `TCL_TRACE_MAX_MB` file-sink cap suppressed events, the count
/// is surfaced both on stderr and as a final `{"type":"dropped",...}`
/// JSONL marker (written past the cap, so readers always learn the trace
/// is a prefix of the run rather than the whole of it).
pub fn emit_summary() {
    if trace_enabled() {
        write_metrics_snapshot();
        let dropped = events_dropped();
        if dropped > 0 {
            sink::emit_line_unbounded(format!(
                "{{\"type\":\"dropped\",\"count\":{dropped},\"reason\":\"TCL_TRACE_MAX_MB\"}}"
            ));
        }
        flush();
    }
    let dropped = events_dropped();
    if dropped > 0 {
        eprintln!("[telemetry] {dropped} trace event(s) dropped by the TCL_TRACE_MAX_MB cap");
    }
    if metrics_enabled() {
        let summary = render_summary();
        if !summary.is_empty() {
            eprintln!("{summary}");
        }
    }
}

/// Test-only control over the gating flags and the sink.
///
/// Hidden from docs: production code must gate on the environment
/// variables. Tests use these helpers to exercise both sides of the
/// disabled-path guarantee inside one process.
#[doc(hidden)]
pub mod test_support {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Serializes tests that toggle the global flags or capture the sink.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs `f` with tracing + metrics force-enabled and the sink captured
    /// in memory; returns `f`'s result and the captured JSONL lines.
    pub fn with_captured<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
        let _guard = lock();
        // ordering: SeqCst — test-only toggles; total order keeps the
        // flag flips observable before/after the captured section without
        // reasoning about pairings, and the cost is irrelevant off the
        // hot path.
        let trace_was = trace_flag().swap(true, Ordering::SeqCst);
        let metrics_was = metrics_flag().swap(true, Ordering::SeqCst); // ordering: SeqCst, as above
        sink::begin_capture();
        let result = f();
        let lines = sink::end_capture();
        // ordering: SeqCst — see the swap above; restores must not be
        // reordered into the captured section.
        trace_flag().store(trace_was, Ordering::SeqCst);
        metrics_flag().store(metrics_was, Ordering::SeqCst); // ordering: SeqCst, as above
        (result, lines)
    }

    /// Runs `f` with tracing + metrics force-disabled (the default state in
    /// test processes) while holding the same lock as [`with_captured`], and
    /// returns `f`'s result plus the number of events emitted during `f`
    /// (which the disabled-path guarantee requires to be zero).
    pub fn with_disabled<R>(f: impl FnOnce() -> R) -> (R, u64) {
        let _guard = lock();
        // ordering: SeqCst — test-only toggles, same rationale as
        // with_captured: total order around the measured section.
        let trace_was = trace_flag().swap(false, Ordering::SeqCst);
        let metrics_was = metrics_flag().swap(false, Ordering::SeqCst); // ordering: SeqCst, as above
        let before = events_emitted();
        let result = f();
        let emitted = events_emitted() - before;
        // ordering: SeqCst — restores stay outside the measured section.
        trace_flag().store(trace_was, Ordering::SeqCst);
        metrics_flag().store(metrics_was, Ordering::SeqCst); // ordering: SeqCst, as above
        (result, emitted)
    }

    /// Clears the metrics registry (capture tests want a clean slate).
    pub fn reset_metrics() {
        super::metrics::reset();
    }
}
