//! Hand-rolled JSON helpers: string escaping for emission, and a minimal
//! recursive-descent parser producing [`JsonValue`] trees for the trace
//! analysis toolkit (`tcl-obs`), tests, and the CI smoke step.
//!
//! The workspace deliberately has no external dependencies (the vendored
//! `serde` is a no-op stub), so telemetry events are serialized by hand.
//! [`escape_into`] covers the emission side; [`parse_line`] is a strict
//! single-value JSON parser that the `tcl-obs` trace loader uses to read
//! the stream back, and [`validate_line`] is its discard-the-value form
//! used by tests and `ci.sh` to confirm every emitted line is well-formed
//! without pulling in a JSON crate.

/// Appends `s` to `out` with JSON string escaping applied (no quotes added).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Appends an `f64` to `out` as a valid JSON number.
///
/// JSON has no NaN/Infinity literals; non-finite values are emitted as
/// `null` so the stream stays parseable.
pub fn number_into(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` for f64 is shortest round-trip and always contains a '.'
        // or exponent, both of which are valid JSON.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// One parsed JSON value.
///
/// Objects keep their members as an ordered `Vec` (insertion order, exactly
/// as they appeared on the wire) rather than a map: the telemetry emitters
/// never produce duplicate keys, and a `Vec` keeps iteration deterministic
/// without imposing an ordering the stream did not have.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` — also what [`number_into`] emits for non-finite floats.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (the only numeric type the telemetry
    /// schema emits; u64 counters up to 2^53 round-trip exactly).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// `[ ... ]`.
    Array(Vec<JsonValue>),
    /// `{ "k": v, ... }` in wire order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object (first occurrence), if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `line` as exactly one well-formed JSON value.
///
/// Returns `Err` with a byte offset and message on the first violation.
/// Accepts the full JSON grammar (objects, arrays, strings, numbers,
/// `true`/`false`/`null`) — strict about trailing content and control
/// characters in strings.
pub fn parse_line(line: &str) -> Result<JsonValue, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

/// Validates that `line` is exactly one well-formed JSON value.
///
/// Equivalent to [`parse_line`] with the value discarded.
pub fn validate_line(line: &str) -> Result<(), String> {
    parse_line(line).map(|_| ())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::String),
        Some(b't') => parse_literal(bytes, pos, b"true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null").map(|()| JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    let mut members = Vec::new();
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    let mut items = Vec::new();
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let mut out = String::new();
    *pos += 1; // consume opening '"'
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => {
                        out.push('"');
                        *pos += 1;
                    }
                    Some(b'\\') => {
                        out.push('\\');
                        *pos += 1;
                    }
                    Some(b'/') => {
                        out.push('/');
                        *pos += 1;
                    }
                    Some(b'b') => {
                        out.push('\u{8}');
                        *pos += 1;
                    }
                    Some(b'f') => {
                        out.push('\u{c}');
                        *pos += 1;
                    }
                    Some(b'n') => {
                        out.push('\n');
                        *pos += 1;
                    }
                    Some(b'r') => {
                        out.push('\r');
                        *pos += 1;
                    }
                    Some(b't') => {
                        out.push('\t');
                        *pos += 1;
                    }
                    Some(b'u') => {
                        *pos += 1;
                        let first = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a low surrogate must follow.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let second = parse_hex4(bytes, pos)?;
                                if (0xDC00..0xE000).contains(&second) {
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                                } else {
                                    return Err(format!(
                                        "unpaired surrogate before byte {pos}",
                                        pos = *pos
                                    ));
                                }
                            } else {
                                return Err(format!(
                                    "unpaired surrogate before byte {pos}",
                                    pos = *pos
                                ));
                            }
                        } else if (0xDC00..0xE000).contains(&first) {
                            return Err(format!(
                                "unpaired low surrogate before byte {pos}",
                                pos = *pos
                            ));
                        } else {
                            first
                        };
                        match char::from_u32(code) {
                            Some(ch) => out.push(ch),
                            None => {
                                return Err(format!(
                                    "invalid \\u escape before byte {pos}",
                                    pos = *pos
                                ))
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!(
                    "raw control byte {c:#04x} in string at {pos}",
                    pos = *pos
                ))
            }
            _ => {
                // Copy one UTF-8 scalar (the input is a &str, so boundaries
                // are trustworthy; take the full multi-byte sequence).
                let width = utf8_width(c);
                match bytes
                    .get(*pos..*pos + width)
                    .and_then(|s| std::str::from_utf8(s).ok())
                {
                    Some(s) => out.push_str(s),
                    None => return Err(format!("bad UTF-8 at byte {pos}", pos = *pos)),
                }
                *pos += width;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let mut v = 0u32;
    for _ in 0..4 {
        match bytes.get(*pos) {
            Some(h) if h.is_ascii_hexdigit() => {
                let d = (*h as char).to_digit(16).unwrap_or(0);
                v = v * 16 + d;
                *pos += 1;
            }
            _ => return Err(format!("bad \\u escape at byte {pos}", pos = *pos)),
        }
    }
    Ok(v)
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // integer part: 0 | [1-9][0-9]*
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return Err(format!("bad number at byte {start}")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(format!("bad fraction at byte {pos}", pos = *pos));
        }
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(format!("bad exponent at byte {pos}", pos = *pos));
        }
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    // The grammar above admits exactly the strings f64::from_str accepts.
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("bad number at byte {start}"))?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn number_roundtrips_and_null_for_nan() {
        let mut out = String::new();
        number_into(0.25, &mut out);
        out.push(' ');
        number_into(f64::NAN, &mut out);
        assert_eq!(out, "0.25 null");
        let mut big = String::new();
        number_into(1e300, &mut big);
        assert!(validate_line(&big).is_ok());
    }

    #[test]
    fn validates_good_lines() {
        for line in [
            "{}",
            "[]",
            "null",
            "-0.5e-3",
            r#"{"type":"span","name":"matmul","id":7,"parent":null,"attrs":{"m":64},"xs":[1,2.5,-3e2]}"#,
            r#""escaped \" \\ é""#,
        ] {
            assert!(validate_line(line).is_ok(), "should parse: {line}");
        }
    }

    #[test]
    fn rejects_bad_lines() {
        for line in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "01",
            "1.",
            "nul",
            "{} extra",
            "\"unterminated",
            "\"raw\tcontrol\"",
            "NaN",
            "\"lone \\ud800 surrogate\"",
        ] {
            assert!(validate_line(line).is_err(), "should reject: {line}");
        }
    }

    #[test]
    fn parse_builds_value_trees() {
        let v = parse_line(r#"{"type":"span","id":7,"parent":null,"attrs":{"m":64.5},"ok":true}"#)
            .expect("parses");
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("span"));
        assert_eq!(v.get("id").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("parent"), Some(&JsonValue::Null));
        assert_eq!(
            v.get("attrs")
                .and_then(|a| a.get("m"))
                .and_then(JsonValue::as_f64),
            Some(64.5)
        );
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("missing"), None);
        let arr = parse_line("[1, 2.5, -3e2]").expect("parses");
        let items = arr.as_array().expect("array");
        assert_eq!(items[2].as_f64(), Some(-300.0));
        assert_eq!(items[2].as_u64(), None, "negative is not u64");
    }

    #[test]
    fn parse_resolves_escapes_and_surrogates() {
        let v = parse_line(r#""a\"b\\c\ndA 😀""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41} 😀"));
        // Escaped emission round-trips through the parser.
        let mut wire = String::from('"');
        escape_into("x\t\"y\"\u{3}", &mut wire);
        wire.push('"');
        let back = parse_line(&wire).expect("round-trip");
        assert_eq!(back.as_str(), Some("x\t\"y\"\u{3}"));
    }
}
