//! Hand-rolled JSON helpers: string escaping for emission and a minimal
//! recursive-descent validator for tests and the CI smoke step.
//!
//! The workspace deliberately has no external dependencies (the vendored
//! `serde` is a no-op stub), so telemetry events are serialized by hand.
//! [`escape_into`] covers the emission side; [`validate_line`] is a strict
//! single-value JSON parser that lets tests and `ci.sh` confirm every
//! emitted line is well-formed without pulling in a JSON crate.

/// Appends `s` to `out` with JSON string escaping applied (no quotes added).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Appends an `f64` to `out` as a valid JSON number.
///
/// JSON has no NaN/Infinity literals; non-finite values are emitted as
/// `null` so the stream stays parseable.
pub fn number_into(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` for f64 is shortest round-trip and always contains a '.'
        // or exponent, both of which are valid JSON.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Validates that `line` is exactly one well-formed JSON value.
///
/// Returns `Err` with a byte offset and message on the first violation.
/// Accepts the full JSON grammar (objects, arrays, strings, numbers,
/// `true`/`false`/`null`) — strict about trailing content and control
/// characters in strings.
pub fn validate_line(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening '"'
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!("bad \\u escape at byte {pos}", pos = *pos))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!(
                    "raw control byte {c:#04x} in string at {pos}",
                    pos = *pos
                ))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // integer part: 0 | [1-9][0-9]*
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return Err(format!("bad number at byte {start}")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(format!("bad fraction at byte {pos}", pos = *pos));
        }
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(format!("bad exponent at byte {pos}", pos = *pos));
        }
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn number_roundtrips_and_null_for_nan() {
        let mut out = String::new();
        number_into(0.25, &mut out);
        out.push(' ');
        number_into(f64::NAN, &mut out);
        assert_eq!(out, "0.25 null");
        let mut big = String::new();
        number_into(1e300, &mut big);
        assert!(validate_line(&big).is_ok());
    }

    #[test]
    fn validates_good_lines() {
        for line in [
            "{}",
            "[]",
            "null",
            "-0.5e-3",
            r#"{"type":"span","name":"matmul","id":7,"parent":null,"attrs":{"m":64},"xs":[1,2.5,-3e2]}"#,
            r#""escaped \" \\ é""#,
        ] {
            assert!(validate_line(line).is_ok(), "should parse: {line}");
        }
    }

    #[test]
    fn rejects_bad_lines() {
        for line in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "01",
            "1.",
            "nul",
            "{} extra",
            "\"unterminated",
            "\"raw\tcontrol\"",
            "NaN",
        ] {
            assert!(validate_line(line).is_err(), "should reject: {line}");
        }
    }
}
