//! # tcl-data
//!
//! Deterministic synthetic vision datasets for the TCL ANN-to-SNN
//! reproduction (Ho & Chang, DAC 2021).
//!
//! The paper evaluates on CIFAR-10 and ImageNet. Neither is available to
//! this reproduction, so [`SynthVision`] generates seeded procedural
//! stand-ins ([`SynthSpec::cifar10_like`], [`SynthSpec::imagenet_like`])
//! that preserve the property the paper's analysis depends on: post-ReLU
//! activation distributions that are heavy-tailed with rare large outliers
//! (the paper's Figure 1). The imagenet-like preset widens the distribution
//! through frequent outlier gains — the regime where percentile norm-factors
//! (Rueckauer et al. 2017) clip real signal and TCL's trained bounds do not.
//!
//! ## Example
//!
//! ```
//! use tcl_data::{SynthSpec, SynthVision};
//!
//! let data = SynthVision::generate(&SynthSpec::tiny(), 42)?;
//! assert_eq!(data.train.classes(), 2);
//! let calibration = data.train.take(16); // small calibration subset
//! assert_eq!(calibration.len(), 16);
//! # Ok::<(), tcl_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dataset;
mod synth;

pub use dataset::Dataset;
pub use synth::{SynthSpec, SynthVision};
