//! Labeled image datasets.

use serde::{Deserialize, Serialize};
use tcl_tensor::{Tensor, TensorError};

/// A labeled image classification dataset: images as one `[N, C, H, W]`
/// tensor plus integer labels.
///
/// # Examples
///
/// ```
/// use tcl_data::Dataset;
/// use tcl_tensor::Tensor;
///
/// let images = Tensor::zeros([4, 3, 8, 8]);
/// let ds = Dataset::new(images, vec![0, 1, 0, 1], 2)?;
/// assert_eq!(ds.len(), 4);
/// assert_eq!(ds.classes(), 2);
/// # Ok::<(), tcl_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating that image count, label count, and
    /// label range agree.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `images` is not rank 4, the label count
    /// differs from the batch dimension, or any label is `>= classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, classes: usize) -> Result<Self, TensorError> {
        let (n, _, _, _) = images.shape().as_nchw()?;
        if labels.len() != n {
            return Err(TensorError::LengthMismatch {
                expected: n,
                actual: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(TensorError::InvalidArgument {
                detail: format!("label {bad} out of range for {classes} classes"),
            });
        }
        Ok(Dataset {
            images,
            labels,
            classes,
        })
    }

    /// The image tensor, `[N, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels, one per image.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of distinct classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image geometry as `(channels, height, width)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        let d = self.images.dims();
        (d[1], d[2], d[3])
    }

    /// A dataset containing only the first `n` samples (or all of them when
    /// `n >= len`). Useful for cheap calibration subsets, mirroring the
    /// paper's baselines that evaluate on ImageNet subsets.
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        // lint: allow(P1) Dataset::new only constructs rank-4 image tensors
        let (_, c, h, w) = self.images.shape().as_nchw().expect("dataset is rank 4");
        let item = c * h * w;
        let images = Tensor::from_vec([n, c, h, w], self.images.data()[..n * item].to_vec())
            // lint: allow(P1) the slice is exactly n*c*h*w elements
            .expect("length consistent by construction");
        Dataset {
            images,
            labels: self.labels[..n].to_vec(),
            classes: self.classes,
        }
    }

    /// Applies an affine normalization `x ↦ (x - mean) / std` in place.
    ///
    /// # Panics
    ///
    /// Panics if `std` is not strictly positive.
    pub fn normalize(&mut self, mean: f32, std: f32) {
        assert!(std > 0.0, "std must be strictly positive");
        let inv = 1.0 / std;
        self.images.map_inplace(|v| (v - mean) * inv);
    }

    /// Mean and standard deviation of all pixels (population estimator).
    pub fn pixel_stats(&self) -> (f32, f32) {
        let mean = self.images.mean();
        let var = self
            .images
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / self.images.len().max(1) as f32;
        (mean, var.sqrt())
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let images = Tensor::from_fn([4, 1, 2, 2], |i| i as f32);
        Dataset::new(images, vec![0, 1, 1, 0], 2).unwrap()
    }

    #[test]
    fn construction_validates_labels() {
        let images = Tensor::zeros([2, 1, 2, 2]);
        assert!(Dataset::new(images.clone(), vec![0], 2).is_err());
        assert!(Dataset::new(images.clone(), vec![0, 5], 2).is_err());
        assert!(Dataset::new(images, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn take_truncates() {
        let ds = tiny();
        let sub = ds.take(2);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[0, 1]);
        assert_eq!(sub.images().dims(), &[2, 1, 2, 2]);
        // Oversized take returns everything.
        assert_eq!(ds.take(100).len(), 4);
    }

    #[test]
    fn normalize_centers_pixels() {
        let mut ds = tiny();
        let (mean, std) = ds.pixel_stats();
        ds.normalize(mean, std);
        let (m2, s2) = ds.pixel_stats();
        assert!(m2.abs() < 1e-5);
        assert!((s2 - 1.0).abs() < 1e-4);
    }

    #[test]
    fn class_counts_tally_labels() {
        let ds = tiny();
        assert_eq!(ds.class_counts(), vec![2, 2]);
    }

    #[test]
    fn image_shape_reports_chw() {
        assert_eq!(tiny().image_shape(), (1, 2, 2));
    }
}
