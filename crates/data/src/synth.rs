//! Procedural synthetic vision datasets.
//!
//! The reproduction has no access to CIFAR-10 or ImageNet, so the paper's
//! datasets are replaced by seeded procedural classification problems that
//! preserve the property the paper's analysis hinges on: **heavy-tailed
//! post-ReLU activation distributions with rare large outliers** (Figure 1).
//! Concretely each class is a family of band-limited texture prototypes;
//! samples mix prototypes, shift circularly, vary in contrast, and — with a
//! small probability — are scaled by a large "outlier gain". That gain knob
//! is what widens the activation distribution for the imagenet-like preset
//! and makes percentile-based norm-factors lossy, reproducing the mechanism
//! behind the paper's ImageNet results.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};
use tcl_tensor::{SeededRng, Tensor, TensorError};

/// Specification of a synthetic vision dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Distinct texture prototypes per class (intra-class variety).
    pub prototypes_per_class: usize,
    /// Sinusoidal components per prototype (texture complexity).
    pub frequency_components: usize,
    /// Std-dev of additive Gaussian pixel noise.
    pub noise_std: f32,
    /// Maximum circular shift (pixels) applied per sample.
    pub max_shift: usize,
    /// Per-sample multiplicative contrast range `[lo, hi]`.
    pub contrast_range: (f32, f32),
    /// Probability that a sample receives an additional outlier gain.
    pub outlier_prob: f32,
    /// Outlier gain range `[lo, hi]` (applied on top of contrast).
    pub outlier_gain: (f32, f32),
}

impl SynthSpec {
    /// The CIFAR-10 stand-in: 10 classes of 3×16×16 textures with moderate
    /// noise and rare, mild outliers.
    pub fn cifar10_like() -> Self {
        SynthSpec {
            classes: 10,
            channels: 3,
            height: 16,
            width: 16,
            train_per_class: 200,
            test_per_class: 40,
            prototypes_per_class: 3,
            frequency_components: 4,
            noise_std: 0.20,
            max_shift: 2,
            contrast_range: (0.8, 1.2),
            outlier_prob: 0.02,
            outlier_gain: (1.5, 2.5),
        }
    }

    /// The ImageNet stand-in: more classes, more intra-class variety, lower
    /// SNR, and frequent large outlier gains → much wider activation
    /// distributions (the regime where the paper shows percentile clipping
    /// failing and TCL holding).
    pub fn imagenet_like() -> Self {
        SynthSpec {
            classes: 20,
            channels: 3,
            height: 16,
            width: 16,
            train_per_class: 120,
            test_per_class: 20,
            prototypes_per_class: 5,
            frequency_components: 6,
            noise_std: 0.30,
            max_shift: 3,
            contrast_range: (0.6, 1.5),
            outlier_prob: 0.08,
            outlier_gain: (2.0, 4.0),
        }
    }

    /// A tiny spec for unit tests and doc examples (2 classes, 1×8×8).
    pub fn tiny() -> Self {
        SynthSpec {
            classes: 2,
            channels: 1,
            height: 8,
            width: 8,
            train_per_class: 20,
            test_per_class: 8,
            prototypes_per_class: 2,
            frequency_components: 3,
            noise_std: 0.1,
            max_shift: 1,
            contrast_range: (0.9, 1.1),
            outlier_prob: 0.0,
            outlier_gain: (1.0, 1.0),
        }
    }

    /// Scales sample counts by `factor` (at least one sample per class),
    /// for quick-mode harness runs.
    pub fn scaled(mut self, factor: f32) -> Self {
        self.train_per_class = ((self.train_per_class as f32 * factor) as usize).max(1);
        self.test_per_class = ((self.test_per_class as f32 * factor) as usize).max(1);
        self
    }

    fn validate(&self) -> Result<(), TensorError> {
        if self.classes == 0
            || self.channels == 0
            || self.height == 0
            || self.width == 0
            || self.train_per_class == 0
            || self.test_per_class == 0
            || self.prototypes_per_class == 0
            || self.frequency_components == 0
        {
            return Err(TensorError::InvalidArgument {
                detail: "all SynthSpec counts must be nonzero".into(),
            });
        }
        if self.contrast_range.0 > self.contrast_range.1
            || self.outlier_gain.0 > self.outlier_gain.1
            || !(0.0..=1.0).contains(&self.outlier_prob)
        {
            return Err(TensorError::InvalidArgument {
                detail: "contrast/outlier ranges malformed".into(),
            });
        }
        Ok(())
    }
}

/// A generated train/test pair plus the normalization applied to it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthVision {
    /// Training split (normalized).
    pub train: Dataset,
    /// Test split (normalized with the *training* statistics).
    pub test: Dataset,
    /// The spec this data was generated from.
    pub spec: SynthSpec,
    /// Pixel mean used for normalization.
    pub norm_mean: f32,
    /// Pixel std-dev used for normalization.
    pub norm_std: f32,
}

impl SynthVision {
    /// Generates a dataset pair from `spec`, deterministically from `seed`.
    ///
    /// Both splits are standardized with the training split's pixel
    /// statistics (matching the usual CIFAR/ImageNet preprocessing).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] for malformed specs.
    ///
    /// # Examples
    ///
    /// ```
    /// use tcl_data::{SynthSpec, SynthVision};
    ///
    /// let data = SynthVision::generate(&SynthSpec::tiny(), 42)?;
    /// assert_eq!(data.train.len(), 40);
    /// assert_eq!(data.test.len(), 16);
    /// # Ok::<(), tcl_tensor::TensorError>(())
    /// ```
    pub fn generate(spec: &SynthSpec, seed: u64) -> Result<Self, TensorError> {
        spec.validate()?;
        let mut master = SeededRng::new(seed);
        let mut proto_rng = master.fork(1);
        let prototypes = class_prototypes(spec, &mut proto_rng);
        let mut train_rng = master.fork(2);
        let mut train = render_split(spec, &prototypes, spec.train_per_class, &mut train_rng)?;
        let mut test_rng = master.fork(3);
        let mut test = render_split(spec, &prototypes, spec.test_per_class, &mut test_rng)?;
        let (mean, std) = train.pixel_stats();
        let std = std.max(1e-6);
        train.normalize(mean, std);
        test.normalize(mean, std);
        Ok(SynthVision {
            train,
            test,
            spec: spec.clone(),
            norm_mean: mean,
            norm_std: std,
        })
    }
}

/// One prototype image per (class, variant), values roughly in `[0, 1]`.
fn class_prototypes(spec: &SynthSpec, rng: &mut SeededRng) -> Vec<Vec<Tensor>> {
    let (c, h, w) = (spec.channels, spec.height, spec.width);
    let mut all = Vec::with_capacity(spec.classes);
    for class in 0..spec.classes {
        // A class-stable localized bump helps classes stay separable even
        // under heavy texture mixing.
        let bump_y = rng.uniform(0.2, 0.8) * h as f32;
        let bump_x = rng.uniform(0.2, 0.8) * w as f32;
        let bump_sigma = rng.uniform(1.0, 2.5);
        let mut variants = Vec::with_capacity(spec.prototypes_per_class);
        for _ in 0..spec.prototypes_per_class {
            let mut img = Tensor::zeros([1, c, h, w]);
            for ch in 0..c {
                // Band-limited texture: a few oriented sinusoids.
                let mut comps = Vec::new();
                for _ in 0..spec.frequency_components {
                    let fy = rng.uniform(0.5, 3.0) / h as f32;
                    let fx = rng.uniform(0.5, 3.0) / w as f32;
                    let phase = rng.uniform(0.0, std::f32::consts::TAU);
                    let amp = rng.uniform(0.3, 1.0);
                    comps.push((fy, fx, phase, amp));
                }
                for y in 0..h {
                    for x in 0..w {
                        let mut v = 0.0f32;
                        for &(fy, fx, phase, amp) in &comps {
                            let arg =
                                std::f32::consts::TAU * (fy * y as f32 + fx * x as f32) + phase;
                            // lint: allow(F2) synthetic pixels are frozen by
                            // the dataset goldens; libm drift fails loudly
                            v += amp * arg.sin();
                        }
                        // Class bump, shared across variants of the class.
                        let dy = y as f32 - bump_y;
                        let dx = x as f32 - bump_x;
                        let g = -(dy * dy + dx * dx) / (2.0 * bump_sigma * bump_sigma);
                        // lint: allow(F2) synthetic pixels are frozen by the
                        // dataset goldens; libm drift fails loudly
                        let bump = 1.5 * g.exp();
                        // Map to a mostly-positive range.
                        let scaled = 0.5 + 0.25 * v / spec.frequency_components as f32 + bump;
                        img.set4(0, ch, y, x, scaled);
                    }
                }
            }
            variants.push(img);
        }
        all.push(variants);
        let _ = class;
    }
    all
}

/// Renders `per_class` samples per class from the prototype bank.
fn render_split(
    spec: &SynthSpec,
    prototypes: &[Vec<Tensor>],
    per_class: usize,
    rng: &mut SeededRng,
) -> Result<Dataset, TensorError> {
    let (c, h, w) = (spec.channels, spec.height, spec.width);
    let n = spec.classes * per_class;
    let mut images = Tensor::zeros([n, c, h, w]);
    let mut labels = Vec::with_capacity(n);
    let item = c * h * w;
    // Interleave classes so that truncation via `Dataset::take` keeps the
    // class balance roughly intact.
    let mut idx = 0usize;
    for s in 0..per_class {
        for (class, variants) in prototypes.iter().enumerate() {
            let v = rng.below(variants.len());
            let proto = &variants[v];
            // Mix with a second variant for intra-class variety.
            let v2 = rng.below(variants.len());
            let alpha = rng.uniform(0.6, 1.0);
            let dy = rng.below(2 * spec.max_shift + 1) as isize - spec.max_shift as isize;
            let dx = rng.below(2 * spec.max_shift + 1) as isize - spec.max_shift as isize;
            let mut gain = rng.uniform(spec.contrast_range.0, spec.contrast_range.1);
            if rng.uniform(0.0, 1.0) < spec.outlier_prob {
                gain *= rng.uniform(spec.outlier_gain.0, spec.outlier_gain.1);
            }
            let dst = &mut images.data_mut()[idx * item..(idx + 1) * item];
            for ch in 0..c {
                for y in 0..h {
                    // Circular shift keeps energy constant across samples.
                    let sy = ((y as isize - dy).rem_euclid(h as isize)) as usize;
                    for x in 0..w {
                        let sx = ((x as isize - dx).rem_euclid(w as isize)) as usize;
                        let base = alpha * proto.at4(0, ch, sy, sx)
                            + (1.0 - alpha) * prototypes[class][v2].at4(0, ch, sy, sx);
                        let noisy = gain * base + spec.noise_std * rng.normal();
                        dst[(ch * h + y) * w + x] = noisy;
                    }
                }
            }
            labels.push(class);
            idx += 1;
        }
        let _ = s;
    }
    Dataset::new(images, labels, spec.classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SynthSpec::tiny();
        let a = SynthVision::generate(&spec, 7).unwrap();
        let b = SynthVision::generate(&spec, 7).unwrap();
        assert_eq!(a.train.images(), b.train.images());
        assert_eq!(a.test.labels(), b.test.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = SynthSpec::tiny();
        let a = SynthVision::generate(&spec, 1).unwrap();
        let b = SynthVision::generate(&spec, 2).unwrap();
        assert_ne!(a.train.images(), b.train.images());
    }

    #[test]
    fn splits_have_expected_sizes_and_balance() {
        let spec = SynthSpec::cifar10_like().scaled(0.1);
        let data = SynthVision::generate(&spec, 3).unwrap();
        assert_eq!(data.train.len(), spec.classes * spec.train_per_class);
        assert_eq!(data.test.len(), spec.classes * spec.test_per_class);
        let counts = data.train.class_counts();
        assert!(counts.iter().all(|&c| c == spec.train_per_class));
    }

    #[test]
    fn train_split_is_standardized() {
        let data = SynthVision::generate(&SynthSpec::tiny(), 5).unwrap();
        let (mean, std) = data.train.pixel_stats();
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((std - 1.0).abs() < 1e-2, "std {std}");
    }

    #[test]
    fn test_split_uses_train_statistics() {
        let data = SynthVision::generate(&SynthSpec::tiny(), 5).unwrap();
        // The test split is normalized with train stats, so its own stats
        // are close to, but not exactly, (0, 1).
        let (mean, std) = data.test.pixel_stats();
        assert!(mean.abs() < 0.5);
        assert!((std - 1.0).abs() < 0.5);
    }

    #[test]
    fn imagenet_like_is_heavier_tailed_than_cifar_like() {
        // Compare the dispersion of per-sample maxima: the outlier-gain
        // mechanism should push the imagenet-like tail out further.
        let tail_spread = |spec: &SynthSpec, seed: u64| -> f32 {
            let data = SynthVision::generate(spec, seed).unwrap();
            let ds = data.train;
            let (c, h, w) = ds.image_shape();
            let item = c * h * w;
            let mut maxima: Vec<f32> = (0..ds.len())
                .map(|i| {
                    ds.images().data()[i * item..(i + 1) * item]
                        .iter()
                        .copied()
                        .fold(f32::NEG_INFINITY, f32::max)
                })
                .collect();
            maxima.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p50 = maxima[maxima.len() / 2];
            let p999 = maxima[(maxima.len() as f32 * 0.999) as usize];
            p999 / p50
        };
        let cifar = tail_spread(&SynthSpec::cifar10_like(), 11);
        let imnet = tail_spread(&SynthSpec::imagenet_like(), 11);
        assert!(
            imnet > cifar,
            "imagenet-like tail ratio {imnet} should exceed cifar-like {cifar}"
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let mut spec = SynthSpec::tiny();
        spec.classes = 0;
        assert!(SynthVision::generate(&spec, 0).is_err());
        let mut spec = SynthSpec::tiny();
        spec.outlier_prob = 1.5;
        assert!(SynthVision::generate(&spec, 0).is_err());
        let mut spec = SynthSpec::tiny();
        spec.contrast_range = (2.0, 1.0);
        assert!(SynthVision::generate(&spec, 0).is_err());
    }

    #[test]
    fn scaled_reduces_counts_with_floor() {
        let spec = SynthSpec::cifar10_like().scaled(0.001);
        assert_eq!(spec.train_per_class, 1);
        assert_eq!(spec.test_per_class, 1);
    }
}
