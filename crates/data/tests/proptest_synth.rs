//! Property-based tests for the synthetic dataset generator.

use proptest::prelude::*;
use tcl_data::{SynthSpec, SynthVision};

fn arbitrary_spec() -> impl Strategy<Value = SynthSpec> {
    (
        2usize..5,   // classes
        1usize..4,   // channels
        4usize..12,  // height
        4usize..12,  // width
        1usize..8,   // train per class
        1usize..4,   // test per class
        1usize..4,   // prototypes
        0.0f32..0.5, // noise
        0usize..3,   // shift
    )
        .prop_map(
            |(classes, channels, height, width, train, test, protos, noise, shift)| SynthSpec {
                classes,
                channels,
                height,
                width,
                train_per_class: train,
                test_per_class: test,
                prototypes_per_class: protos,
                frequency_components: 3,
                noise_std: noise,
                max_shift: shift,
                contrast_range: (0.9, 1.1),
                outlier_prob: 0.05,
                outlier_gain: (1.5, 2.0),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_data_is_finite_and_balanced(spec in arbitrary_spec(), seed in 0u64..1000) {
        let data = SynthVision::generate(&spec, seed).unwrap();
        prop_assert!(data.train.images().is_finite());
        prop_assert!(data.test.images().is_finite());
        prop_assert_eq!(data.train.len(), spec.classes * spec.train_per_class);
        prop_assert_eq!(data.test.len(), spec.classes * spec.test_per_class);
        let counts = data.train.class_counts();
        prop_assert!(counts.iter().all(|&c| c == spec.train_per_class));
    }

    #[test]
    fn generation_is_a_pure_function_of_spec_and_seed(
        spec in arbitrary_spec(),
        seed in 0u64..1000,
    ) {
        let a = SynthVision::generate(&spec, seed).unwrap();
        let b = SynthVision::generate(&spec, seed).unwrap();
        prop_assert_eq!(a.train.images(), b.train.images());
        prop_assert_eq!(a.test.images(), b.test.images());
        prop_assert_eq!(a.norm_mean, b.norm_mean);
    }

    #[test]
    fn train_and_test_splits_are_disjoint_draws(
        spec in arbitrary_spec(),
        seed in 0u64..1000,
    ) {
        // The splits come from independent RNG streams; identical images
        // across splits would indicate stream reuse.
        let data = SynthVision::generate(&spec, seed).unwrap();
        prop_assume!(!data.train.is_empty() && !data.test.is_empty());
        let (c, h, w) = data.train.image_shape();
        let item = c * h * w;
        let first_train = &data.train.images().data()[..item];
        let first_test = &data.test.images().data()[..item];
        prop_assert_ne!(first_train, first_test);
    }

    #[test]
    fn take_keeps_class_interleaving(spec in arbitrary_spec(), seed in 0u64..1000) {
        let data = SynthVision::generate(&spec, seed).unwrap();
        // The generator interleaves classes, so the first `classes` samples
        // cover every class exactly once.
        let head = data.train.take(spec.classes);
        let mut seen = head.labels().to_vec();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..spec.classes).collect::<Vec<_>>());
    }

    #[test]
    fn normalization_stats_are_positive(spec in arbitrary_spec(), seed in 0u64..1000) {
        let data = SynthVision::generate(&spec, seed).unwrap();
        prop_assert!(data.norm_std > 0.0);
        prop_assert!(data.norm_mean.is_finite());
    }
}
