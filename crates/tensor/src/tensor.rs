//! The dense `f32` tensor type.

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, `f32` tensor.
///
/// This is the single numeric container used by the whole TCL stack: ANN
/// activations and parameters, spiking currents and membrane potentials. It
/// deliberately owns its storage (no views/strides beyond row-major) — the
/// kernels in [`crate::ops`] are written directly against contiguous slices,
/// which keeps them auditable and fast enough for the width-scaled networks
/// this reproduction trains.
///
/// # Examples
///
/// ```
/// use tcl_tensor::Tensor;
///
/// let t = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.sum(), 10.0);
/// let doubled = t.map(|v| v * 2.0);
/// assert_eq!(doubled.data(), &[2.0, 4.0, 6.0, 8.0]);
/// # Ok::<(), tcl_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros<S: Into<Shape>>(shape: S) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full<S: Into<Shape>>(shape: S, value: f32) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones<S: Into<Shape>>(shape: S) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new([]),
            data: vec![value],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the element count implied by `shape`.
    pub fn from_vec<S: Into<Shape>>(shape: S, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.len() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new([data.len()]),
            data: data.to_vec(),
        }
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn<S: Into<Shape>, F: FnMut(usize) -> f32>(shape: S, mut f: F) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at flat index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn at(&self, i: usize) -> f32 {
        self.data[i]
    }

    /// Element at `[n, c, h, w]` of a rank-4 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or an index is out of bounds.
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        // lint: allow(P1) documented panicking accessor (indexing sugar)
        let (_, cc, hh, ww) = self.shape.as_nchw().expect("at4 requires a rank-4 tensor");
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Sets the element at `[n, c, h, w]` of a rank-4 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or an index is out of bounds.
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        // lint: allow(P1) documented panicking accessor (indexing sugar)
        let (_, cc, hh, ww) = self.shape.as_nchw().expect("set4 requires a rank-4 tensor");
        self.data[((n * cc + c) * hh + h) * ww + w] = value;
    }

    /// Element at `[r, c]` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or an index is out of bounds.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        let (_, cols) = self
            .shape
            .as_matrix()
            // lint: allow(P1) documented panicking accessor (indexing sugar)
            .expect("at2 requires a rank-2 tensor");
        self.data[r * cols + c]
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape<S: Into<Shape>>(&self, shape: S) -> Result<Tensor> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Like [`Tensor::reshape`] but consumes the tensor, avoiding a copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn into_reshape<S: Into<Shape>>(self, shape: S) -> Result<Tensor> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map<F: FnMut(f32) -> f32>(&self, mut f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip<F: FnMut(f32, f32) -> f32>(&self, other: &Tensor, mut f: F) -> Result<Tensor> {
        self.expect_same_shape(other)?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a * b)
    }

    /// In-place `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.expect_same_shape(other)?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += scale * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled_assign(&mut self, other: &Tensor, scale: f32) -> Result<()> {
        self.expect_same_shape(other)?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Multiplies every element by `s`, producing a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`f32::NEG_INFINITY` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`f32::INFINITY` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Largest absolute difference to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        self.expect_same_shape(other)?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Whether all elements are finite (no NaN/inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Errors unless `other` has the same shape.
    pub fn expect_same_shape(&self, other: &Tensor) -> Result<()> {
        if self.shape == other.shape {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            })
        }
    }

    /// Extracts batch item `n` of a rank-4 tensor as a `[1, C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or `n` is out of bounds.
    pub fn batch_item(&self, n: usize) -> Tensor {
        let (nn, c, h, w) = self
            .shape
            .as_nchw()
            // lint: allow(P1) documented panicking accessor (indexing sugar)
            .expect("batch_item requires a rank-4 tensor");
        assert!(n < nn, "batch index {n} out of bounds for batch size {nn}");
        let item = c * h * w;
        Tensor {
            shape: Shape::new([1, c, h, w]),
            data: self.data[n * item..(n + 1) * item].to_vec(),
        }
    }

    /// Concatenates rank-4 tensors along the batch dimension.
    ///
    /// # Errors
    ///
    /// Returns an error if `parts` is empty, any part is not rank 4, or the
    /// non-batch dimensions disagree.
    pub fn cat_batch(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts.first().ok_or_else(|| TensorError::InvalidArgument {
            detail: "cat_batch requires at least one tensor".into(),
        })?;
        let (_, c, h, w) = first.shape.as_nchw()?;
        let mut total_n = 0;
        for p in parts {
            let (pn, pc, ph, pw) = p.shape.as_nchw()?;
            if (pc, ph, pw) != (c, h, w) {
                return Err(TensorError::ShapeMismatch {
                    left: first.shape.dims().to_vec(),
                    right: p.shape.dims().to_vec(),
                });
            }
            total_n += pn;
        }
        let mut data = Vec::with_capacity(total_n * c * h * w);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Ok(Tensor {
            shape: Shape::new([total_n, c, h, w]),
            data,
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(f, "[{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([2, 3], vec![0.0; 6]).is_ok());
        let err = Tensor::from_vec([2, 3], vec![0.0; 5]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn zeros_ones_full_scalar() {
        assert_eq!(Tensor::zeros([3]).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(Tensor::ones([2]).data(), &[1.0, 1.0]);
        assert_eq!(Tensor::full([2], 7.5).data(), &[7.5, 7.5]);
        let s = Tensor::scalar(3.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.shape().rank(), 0);
    }

    #[test]
    fn nchw_indexing_roundtrip() {
        let mut t = Tensor::zeros([2, 3, 4, 5]);
        t.set4(1, 2, 3, 4, 9.0);
        assert_eq!(t.at4(1, 2, 3, 4), 9.0);
        // Flat index: ((1*3+2)*4+3)*5+4 = 119.
        assert_eq!(t.at(119), 9.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0, 33.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[9.0, 18.0, 27.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[10.0, 40.0, 90.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn add_scaled_assign_is_axpy() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        a.add_scaled_assign(&b, 0.5).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[-1.0, 4.0, 2.0, -5.0]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -5.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn batch_item_and_cat_batch_roundtrip() {
        let t = Tensor::from_fn([3, 2, 2, 2], |i| i as f32);
        let parts: Vec<Tensor> = (0..3).map(|n| t.batch_item(n)).collect();
        let back = Tensor::cat_batch(&parts).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn cat_batch_rejects_mismatched_channels() {
        let a = Tensor::zeros([1, 2, 2, 2]);
        let b = Tensor::zeros([1, 3, 2, 2]);
        assert!(Tensor::cat_batch(&[a, b]).is_err());
    }

    #[test]
    fn max_abs_diff_measures_distance() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[1.5, 1.0]);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut t = Tensor::ones([2]);
        assert!(t.is_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.is_finite());
    }

    #[test]
    fn display_previews_elements() {
        let t = Tensor::from_slice(&[1.0; 10]);
        let s = t.to_string();
        assert!(s.contains("…"));
        assert!(s.starts_with("Tensor[10]"));
    }
}
