//! Shapes and row-major stride arithmetic.

use crate::error::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A tensor shape: an ordered list of dimension extents.
///
/// Shapes are row-major; the last dimension is contiguous in memory. The
/// vision kernels in this crate interpret rank-4 shapes as `[N, C, H, W]`
/// (batch, channels, height, width), matching the layout the paper's PyTorch
/// reference implementation uses.
///
/// # Examples
///
/// ```
/// use tcl_tensor::Shape;
///
/// let s = Shape::new([2, 3, 4, 4]);
/// assert_eq!(s.len(), 96);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.dims(), &[2, 3, 4, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from any collection of dimension extents.
    pub fn new<I>(dims: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        Shape {
            dims: dims.into_iter().collect(),
        }
    }

    /// The dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for a rank-0 shape).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// ```
    /// use tcl_tensor::Shape;
    /// assert_eq!(Shape::new([2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Returns an error unless this shape has exactly `rank` dimensions.
    pub fn expect_rank(&self, rank: usize) -> Result<()> {
        if self.rank() == rank {
            Ok(())
        } else {
            Err(TensorError::RankMismatch {
                expected: rank,
                actual: self.rank(),
            })
        }
    }

    /// Interprets this shape as `[N, C, H, W]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the shape is not rank 4.
    pub fn as_nchw(&self) -> Result<(usize, usize, usize, usize)> {
        self.expect_rank(4)?;
        Ok((self.dims[0], self.dims[1], self.dims[2], self.dims[3]))
    }

    /// Interprets this shape as a matrix `[rows, cols]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the shape is not rank 2.
    pub fn as_matrix(&self) -> Result<(usize, usize)> {
        self.expect_rank(2)?;
        Ok((self.dims[0], self.dims[1]))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new([2, 3, 5]).len(), 30);
        assert_eq!(Shape::new([7]).len(), 7);
        assert_eq!(Shape::new([]).len(), 1);
    }

    #[test]
    fn zero_extent_dimension_yields_empty_shape() {
        let s = Shape::new([3, 0, 2]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new([4, 2, 3]).strides(), vec![6, 3, 1]);
        assert_eq!(Shape::new([5]).strides(), vec![1]);
        assert!(Shape::new([]).strides().is_empty());
    }

    #[test]
    fn as_nchw_accepts_only_rank_4() {
        assert_eq!(Shape::new([1, 2, 3, 4]).as_nchw().unwrap(), (1, 2, 3, 4));
        assert!(Shape::new([2, 3]).as_nchw().is_err());
    }

    #[test]
    fn as_matrix_accepts_only_rank_2() {
        assert_eq!(Shape::new([6, 9]).as_matrix().unwrap(), (6, 9));
        assert!(Shape::new([6, 9, 1]).as_matrix().is_err());
    }

    #[test]
    fn display_uses_x_separator() {
        assert_eq!(Shape::new([2, 3, 4]).to_string(), "[2x3x4]");
        assert_eq!(Shape::new([]).to_string(), "[]");
    }

    #[test]
    fn conversions_from_arrays_and_slices() {
        let a: Shape = [1, 2].into();
        let b: Shape = vec![1, 2].into();
        let c: Shape = (&[1usize, 2][..]).into();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
