//! Row-wise reductions and the softmax family.
//!
//! These operate on rank-2 `[batch, features]` tensors — the shape of
//! classifier logits — and back the loss layer and accuracy metrics.

use crate::error::Result;
use crate::tensor::Tensor;

/// Row-wise argmax of a `[batch, classes]` tensor.
///
/// Ties resolve to the lowest index, so results are deterministic.
///
/// # Errors
///
/// Returns a rank error if the input is not rank 2.
///
/// # Examples
///
/// ```
/// use tcl_tensor::{ops, Tensor};
///
/// let logits = Tensor::from_vec([2, 3], vec![0.1, 0.9, 0.0, 2.0, -1.0, 2.0])?;
/// assert_eq!(ops::argmax_rows(&logits)?, vec![1, 0]);
/// # Ok::<(), tcl_tensor::TensorError>(())
/// ```
pub fn argmax_rows(input: &Tensor) -> Result<Vec<usize>> {
    let (rows, cols) = input.shape().as_matrix()?;
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &input.data()[r * cols..(r + 1) * cols];
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        out.push(best);
        let _ = r;
    }
    Ok(out)
}

/// Row-wise maximum of a `[batch, features]` tensor.
///
/// # Errors
///
/// Returns a rank error if the input is not rank 2.
pub fn max_rows(input: &Tensor) -> Result<Vec<f32>> {
    let (rows, cols) = input.shape().as_matrix()?;
    Ok((0..rows)
        .map(|r| {
            input.data()[r * cols..(r + 1) * cols]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max)
        })
        .collect())
}

/// Numerically stable row-wise softmax of a `[batch, classes]` tensor.
///
/// # Errors
///
/// Returns a rank error if the input is not rank 2.
pub fn softmax_rows(input: &Tensor) -> Result<Tensor> {
    let (rows, cols) = input.shape().as_matrix()?;
    let mut out = input.clone();
    for r in 0..rows {
        let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for v in row.iter_mut() {
            // lint: allow(F2) softmax goldens pin this exp on the reference
            // libm, and downstream argmax is invariant to monotone drift
            *v = (*v - m).exp();
            z += *v;
        }
        let inv = 1.0 / z;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    Ok(out)
}

/// Numerically stable row-wise log-sum-exp of a `[batch, classes]` tensor.
///
/// # Errors
///
/// Returns a rank error if the input is not rank 2.
pub fn logsumexp_rows(input: &Tensor) -> Result<Vec<f32>> {
    let (rows, cols) = input.shape().as_matrix()?;
    Ok((0..rows)
        .map(|r| {
            let row = &input.data()[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            // lint: allow(F2) log-sum-exp goldens pin this on the reference
            // libm; it feeds loss reporting, not replayed state
            let s: f32 = row.iter().map(|&v| (v - m).exp()).sum();
            m + s.ln() // lint: allow(F2) paired with the exp above
        })
        .collect())
}

/// Fraction of rows whose argmax equals the label.
///
/// # Errors
///
/// Returns a rank error if `logits` is not rank 2, or a length error if
/// `labels` has the wrong length.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let predictions = argmax_rows(logits)?;
    if predictions.len() != labels.len() {
        return Err(crate::TensorError::LengthMismatch {
            expected: predictions.len(),
            actual: labels.len(),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    Ok(correct as f32 / labels.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_resolves_ties_to_lowest_index() {
        let t = Tensor::from_vec([1, 4], vec![3.0, 5.0, 5.0, 1.0]).unwrap();
        assert_eq!(argmax_rows(&t).unwrap(), vec![1]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let s = softmax_rows(&t).unwrap();
        for r in 0..2 {
            let sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([1, 3], vec![101.0, 102.0, 103.0]).unwrap();
        let sa = softmax_rows(&a).unwrap();
        let sb = softmax_rows(&b).unwrap();
        assert!(sa.max_abs_diff(&sb).unwrap() < 1e-6);
    }

    #[test]
    fn softmax_handles_large_logits_without_overflow() {
        let t = Tensor::from_vec([1, 2], vec![1000.0, 999.0]).unwrap();
        let s = softmax_rows(&t).unwrap();
        assert!(s.is_finite());
        assert!(s.at(0) > s.at(1));
    }

    #[test]
    fn logsumexp_matches_direct_computation_when_safe() {
        let t = Tensor::from_vec([1, 3], vec![0.1, 0.2, 0.3]).unwrap();
        let direct = (0.1f32.exp() + 0.2f32.exp() + 0.3f32.exp()).ln();
        assert!((logsumexp_rows(&t).unwrap()[0] - direct).abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec([3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 0]).unwrap(), 1.0);
    }

    #[test]
    fn accuracy_validates_label_length() {
        let logits = Tensor::zeros([2, 2]);
        assert!(accuracy(&logits, &[0]).is_err());
    }

    #[test]
    fn max_rows_returns_row_maxima() {
        let t = Tensor::from_vec([2, 2], vec![-5.0, -1.0, 7.0, 3.0]).unwrap();
        assert_eq!(max_rows(&t).unwrap(), vec![-1.0, 7.0]);
    }
}

/// Fraction of rows whose label appears among the `k` largest logits
/// (top-k accuracy; ImageNet results conventionally report top-1/top-5).
///
/// # Errors
///
/// Returns a rank error if `logits` is not rank 2, a length error for a
/// label count mismatch, or an invalid-argument error for `k == 0`.
///
/// # Examples
///
/// ```
/// use tcl_tensor::{ops, Tensor};
///
/// let logits = Tensor::from_vec([1, 4], vec![0.1, 0.9, 0.5, 0.2])?;
/// assert_eq!(ops::topk_accuracy(&logits, &[2], 1)?, 0.0);
/// assert_eq!(ops::topk_accuracy(&logits, &[2], 2)?, 1.0);
/// # Ok::<(), tcl_tensor::TensorError>(())
/// ```
pub fn topk_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> Result<f32> {
    let (rows, cols) = logits.shape().as_matrix()?;
    if k == 0 {
        return Err(crate::TensorError::InvalidArgument {
            detail: "top-k accuracy requires k >= 1".into(),
        });
    }
    if labels.len() != rows {
        return Err(crate::TensorError::LengthMismatch {
            expected: rows,
            actual: labels.len(),
        });
    }
    if rows == 0 {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = &logits.data()[r * cols..(r + 1) * cols];
        if label >= cols {
            return Err(crate::TensorError::InvalidArgument {
                detail: format!("label {label} out of range for {cols} classes"),
            });
        }
        // The label is in the top k iff fewer than k entries strictly
        // exceed it (ties resolve in the label's favour only for earlier
        // indices, matching argmax's lowest-index rule).
        let target = row[label];
        let better = row
            .iter()
            .enumerate()
            .filter(|&(i, &v)| v > target || (v == target && i < label))
            .count();
        if better < k {
            correct += 1;
        }
    }
    Ok(correct as f32 / rows as f32)
}

#[cfg(test)]
mod topk_tests {
    use super::*;

    #[test]
    fn top1_matches_argmax_accuracy() {
        let logits =
            Tensor::from_vec([3, 3], vec![1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0]).unwrap();
        let labels = [0usize, 1, 0];
        let top1 = topk_accuracy(&logits, &labels, 1).unwrap();
        let arg = accuracy(&logits, &labels).unwrap();
        assert_eq!(top1, arg);
    }

    #[test]
    fn topk_is_monotone_in_k() {
        let logits =
            Tensor::from_vec([2, 4], vec![0.4, 0.3, 0.2, 0.1, 0.1, 0.2, 0.3, 0.4]).unwrap();
        let labels = [3usize, 0];
        let mut prev = 0.0;
        for k in 1..=4 {
            let a = topk_accuracy(&logits, &labels, k).unwrap();
            assert!(a >= prev);
            prev = a;
        }
        assert_eq!(prev, 1.0);
    }

    #[test]
    fn ties_respect_lowest_index_rule() {
        let logits = Tensor::from_vec([1, 3], vec![1.0, 1.0, 1.0]).unwrap();
        // Label 0 wins ties; labels 1 and 2 lose to earlier equal entries.
        assert_eq!(topk_accuracy(&logits, &[0], 1).unwrap(), 1.0);
        assert_eq!(topk_accuracy(&logits, &[1], 1).unwrap(), 0.0);
        assert_eq!(topk_accuracy(&logits, &[1], 2).unwrap(), 1.0);
    }

    #[test]
    fn validates_arguments() {
        let logits = Tensor::zeros([2, 3]);
        assert!(topk_accuracy(&logits, &[0, 1], 0).is_err());
        assert!(topk_accuracy(&logits, &[0], 1).is_err());
        assert!(topk_accuracy(&logits, &[0, 9], 1).is_err());
    }
}
