//! 2-D convolution via im2col/col2im.
//!
//! Convolution is lowered to matrix multiplication: each sliding window of
//! the (zero-padded) input is unrolled into a column (`im2col`), the kernel
//! is viewed as an `[out_c, in_c·kh·kw]` matrix, and the output is their
//! product. The backward pass reuses the same lowering: `col2im` is the exact
//! adjoint of `im2col` (a property-tested invariant), which makes input
//! gradients a transpose-product followed by re-folding.

use crate::error::{Result, TensorError};
use crate::ops::matmul::{matmul_into, transpose_into};
use crate::par;
use crate::par::min_items_per_worker;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D convolution: kernel size, stride, and symmetric zero
/// padding.
///
/// # Examples
///
/// ```
/// use tcl_tensor::ops::ConvGeometry;
///
/// // A padded 3x3 "same" convolution on an 8x8 input.
/// let g = ConvGeometry::new(3, 3, 1, 1)?;
/// assert_eq!(g.output_hw(8, 8)?, (8, 8));
/// # Ok::<(), tcl_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeometry {
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Symmetric zero padding (same on all four sides).
    pub padding: usize,
}

impl ConvGeometry {
    /// Creates a geometry, validating that the kernel is non-empty and the
    /// stride nonzero.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for a zero kernel extent or
    /// zero stride.
    pub fn new(kernel_h: usize, kernel_w: usize, stride: usize, padding: usize) -> Result<Self> {
        if kernel_h == 0 || kernel_w == 0 {
            return Err(TensorError::InvalidArgument {
                detail: "kernel extents must be nonzero".into(),
            });
        }
        if stride == 0 {
            return Err(TensorError::InvalidArgument {
                detail: "stride must be nonzero".into(),
            });
        }
        Ok(ConvGeometry {
            kernel_h,
            kernel_w,
            stride,
            padding,
        })
    }

    /// Square-kernel convenience constructor.
    ///
    /// # Errors
    ///
    /// As for [`ConvGeometry::new`].
    pub fn square(kernel: usize, stride: usize, padding: usize) -> Result<Self> {
        Self::new(kernel, kernel, stride, padding)
    }

    /// Output spatial extent for an input of `in_h x in_w`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::WindowDoesNotFit`] if the padded input is
    /// smaller than the kernel.
    pub fn output_hw(&self, in_h: usize, in_w: usize) -> Result<(usize, usize)> {
        let ph = in_h + 2 * self.padding;
        let pw = in_w + 2 * self.padding;
        if ph < self.kernel_h || pw < self.kernel_w {
            return Err(TensorError::WindowDoesNotFit {
                detail: format!(
                    "kernel {}x{} on padded input {}x{}",
                    self.kernel_h, self.kernel_w, ph, pw
                ),
            });
        }
        Ok((
            (ph - self.kernel_h) / self.stride + 1,
            (pw - self.kernel_w) / self.stride + 1,
        ))
    }
}

/// Unrolls sliding windows of a single image `[C, H, W]` (given as a flat
/// slice) into a `[C*kh*kw, out_h*out_w]` column matrix.
///
/// Out-of-bounds (padding) positions contribute zeros.
#[allow(clippy::too_many_arguments)] // geometry is explicit by design in the hot path
pub fn im2col_single(
    input: &[f32],
    channels: usize,
    in_h: usize,
    in_w: usize,
    geom: ConvGeometry,
    out_h: usize,
    out_w: usize,
    cols: &mut [f32],
) {
    let col_width = out_h * out_w;
    debug_assert_eq!(input.len(), channels * in_h * in_w);
    debug_assert_eq!(
        cols.len(),
        channels * geom.kernel_h * geom.kernel_w * col_width
    );
    let pad = geom.padding as isize;
    let stride = geom.stride;
    let mut row = 0usize;
    for c in 0..channels {
        let plane = &input[c * in_h * in_w..(c + 1) * in_h * in_w];
        for kh in 0..geom.kernel_h {
            for kw in 0..geom.kernel_w {
                let dst = &mut cols[row * col_width..(row + 1) * col_width];
                let mut idx = 0usize;
                for oh in 0..out_h {
                    let ih = oh as isize * stride as isize + kh as isize - pad;
                    if ih < 0 || ih >= in_h as isize {
                        for d in dst[idx..idx + out_w].iter_mut() {
                            *d = 0.0;
                        }
                        idx += out_w;
                        continue;
                    }
                    let src_row = &plane[ih as usize * in_w..(ih as usize + 1) * in_w];
                    for ow in 0..out_w {
                        let iw = ow as isize * stride as isize + kw as isize - pad;
                        dst[idx] = if iw < 0 || iw >= in_w as isize {
                            0.0
                        } else {
                            src_row[iw as usize]
                        };
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Folds a `[C*kh*kw, out_h*out_w]` column matrix back into an image
/// `[C, H, W]`, *accumulating* overlapping contributions.
///
/// This is the adjoint of [`im2col_single`]: for all `x`, `y` it holds that
/// `⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩`.
#[allow(clippy::too_many_arguments)] // geometry is explicit by design in the hot path
pub fn col2im_single(
    cols: &[f32],
    channels: usize,
    in_h: usize,
    in_w: usize,
    geom: ConvGeometry,
    out_h: usize,
    out_w: usize,
    output: &mut [f32],
) {
    let col_width = out_h * out_w;
    debug_assert_eq!(output.len(), channels * in_h * in_w);
    debug_assert_eq!(
        cols.len(),
        channels * geom.kernel_h * geom.kernel_w * col_width
    );
    let pad = geom.padding as isize;
    let stride = geom.stride;
    let mut row = 0usize;
    for c in 0..channels {
        let plane = &mut output[c * in_h * in_w..(c + 1) * in_h * in_w];
        for kh in 0..geom.kernel_h {
            for kw in 0..geom.kernel_w {
                let src = &cols[row * col_width..(row + 1) * col_width];
                let mut idx = 0usize;
                for oh in 0..out_h {
                    let ih = oh as isize * stride as isize + kh as isize - pad;
                    if ih < 0 || ih >= in_h as isize {
                        idx += out_w;
                        continue;
                    }
                    let dst_row = &mut plane[ih as usize * in_w..(ih as usize + 1) * in_w];
                    for ow in 0..out_w {
                        let iw = ow as isize * stride as isize + kw as isize - pad;
                        if iw >= 0 && iw < in_w as isize {
                            dst_row[iw as usize] += src[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// * `input` — `[N, C, H, W]`
/// * `weight` — `[O, C, kh, kw]`
/// * `bias` — optional `[O]`
///
/// Returns `[N, O, out_h, out_w]`.
///
/// # Errors
///
/// Returns an error if the ranks are wrong, channel counts disagree, the
/// kernel does not fit the padded input, or the bias length differs from the
/// output channel count.
///
/// # Examples
///
/// ```
/// use tcl_tensor::{ops, Tensor};
/// use tcl_tensor::ops::ConvGeometry;
///
/// // 1x1 convolution with weight 1 is the identity.
/// let x = Tensor::from_fn([1, 1, 2, 2], |i| i as f32);
/// let w = Tensor::ones([1, 1, 1, 1]);
/// let g = ConvGeometry::square(1, 1, 0)?;
/// let y = ops::conv2d(&x, &w, None, g)?;
/// assert_eq!(y.data(), x.data());
/// # Ok::<(), tcl_tensor::TensorError>(())
/// ```
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    geom: ConvGeometry,
) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (out_c, wc, kh, kw) = weight.shape().as_nchw()?;
    if wc != c {
        return Err(TensorError::ShapeMismatch {
            left: input.dims().to_vec(),
            right: weight.dims().to_vec(),
        });
    }
    if kh != geom.kernel_h || kw != geom.kernel_w {
        return Err(TensorError::InvalidArgument {
            detail: format!(
                "weight kernel {kh}x{kw} disagrees with geometry {}x{}",
                geom.kernel_h, geom.kernel_w
            ),
        });
    }
    if let Some(b) = bias {
        if b.len() != out_c {
            return Err(TensorError::LengthMismatch {
                expected: out_c,
                actual: b.len(),
            });
        }
    }
    let (out_h, out_w) = geom.output_hw(h, w)?;
    let _span = tcl_telemetry::span_with("conv2d", || {
        vec![
            ("batch", n as f64),
            ("in_c", c as f64),
            ("out_c", out_c as f64),
            ("out_h", out_h as f64),
            ("out_w", out_w as f64),
        ]
    });
    let col_rows = c * kh * kw;
    let col_width = out_h * out_w;
    let mut out = Tensor::zeros([n, out_c, out_h, out_w]);
    let item_in = c * h * w;
    let item_out = out_c * out_h * out_w;
    // Batch items write disjoint output slices, so they fan out across
    // threads; each worker keeps a private im2col buffer. Inside a worker
    // the matmul stays serial (nested fan-out is suppressed), while a
    // single-worker run lets the matmul parallelize over rows instead.
    let min_items = min_items_per_worker(out_c * col_rows * col_width);
    par::par_items_mut(
        par::current(),
        out.data_mut(),
        item_out,
        1,
        min_items,
        |first_item, run| {
            let mut cols = vec![0.0f32; col_rows * col_width];
            for (i, dst) in run.chunks_exact_mut(item_out.max(1)).enumerate() {
                let ni = first_item + i;
                let src = &input.data()[ni * item_in..(ni + 1) * item_in];
                im2col_single(src, c, h, w, geom, out_h, out_w, &mut cols);
                matmul_into(weight.data(), &cols, dst, out_c, col_rows, col_width);
                if let Some(b) = bias {
                    for (o, &bv) in b.data().iter().enumerate() {
                        for v in dst[o * col_width..(o + 1) * col_width].iter_mut() {
                            *v += bv;
                        }
                    }
                }
            }
        },
    );
    Ok(out)
}

/// Gradients of [`conv2d`] with respect to input, weight, and bias.
#[derive(Debug, Clone)]
pub struct Conv2dGradients {
    /// Gradient with respect to the input, `[N, C, H, W]`.
    pub grad_input: Tensor,
    /// Gradient with respect to the weight, `[O, C, kh, kw]`.
    pub grad_weight: Tensor,
    /// Gradient with respect to the bias, `[O]` (zeros when the forward pass
    /// had no bias — callers simply ignore it).
    pub grad_bias: Tensor,
}

/// Backward 2-D convolution.
///
/// Given the forward inputs and the upstream gradient `grad_output`
/// (`[N, O, out_h, out_w]`), computes gradients for input, weight, and bias.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent with the forward geometry.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    geom: ConvGeometry,
) -> Result<Conv2dGradients> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (out_c, _, kh, kw) = weight.shape().as_nchw()?;
    let (gn, go, goh, gow) = grad_output.shape().as_nchw()?;
    let (out_h, out_w) = geom.output_hw(h, w)?;
    if gn != n || go != out_c || goh != out_h || gow != out_w {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, out_c, out_h, out_w],
            right: grad_output.dims().to_vec(),
        });
    }
    let col_rows = c * kh * kw;
    let col_width = out_h * out_w;
    let mut grad_input = Tensor::zeros([n, c, h, w]);
    let mut grad_weight = Tensor::zeros(weight.shape().clone());
    let mut grad_bias = Tensor::zeros([out_c]);
    let item_in = c * h * w;
    let item_out = out_c * col_width;

    // Phase 1 — input gradients, parallel over batch items: each item's
    // `dCols = Wᵀ @ dY` and col2im fold write a disjoint grad_input slice.
    // Per-item bias partials ride along in lockstep slots and are folded in
    // item order afterwards, so results are thread-count-invariant.
    let mut wt = vec![0.0f32; out_c * col_rows];
    transpose_into(weight.data(), &mut wt, out_c, col_rows);
    let mut bias_partials = vec![0.0f32; n * out_c];
    let min_items = min_items_per_worker(col_rows * out_c * col_width);
    par::par_items_mut2(
        par::current(),
        grad_input.data_mut(),
        item_in,
        &mut bias_partials,
        out_c,
        1,
        min_items,
        |first_item, gi_run, db_run| {
            let mut dcols = vec![0.0f32; col_rows * col_width];
            for (i, (dst, db)) in gi_run
                .chunks_exact_mut(item_in.max(1))
                .zip(db_run.chunks_exact_mut(out_c.max(1)))
                .enumerate()
            {
                let ni = first_item + i;
                let gout = &grad_output.data()[ni * item_out..(ni + 1) * item_out];
                dcols.fill(0.0);
                matmul_into(&wt, gout, &mut dcols, col_rows, out_c, col_width);
                col2im_single(&dcols, c, h, w, geom, out_h, out_w, dst);
                for (o, gb) in db.iter_mut().enumerate() {
                    *gb = gout[o * col_width..(o + 1) * col_width].iter().sum::<f32>();
                }
            }
        },
    );
    for item in bias_partials.chunks_exact(out_c.max(1)) {
        for (gb, &p) in grad_bias.data_mut().iter_mut().zip(item) {
            *gb += p;
        }
    }

    // Phase 2 — weight gradients, serial over items (the accumulation into
    // dW is a reduction, so item order is kept fixed); the inner matmul
    // parallelizes over its own output rows.
    let mut cols = vec![0.0f32; col_rows * col_width];
    let mut cols_t = vec![0.0f32; col_rows * col_width];
    for ni in 0..n {
        let src = &input.data()[ni * item_in..(ni + 1) * item_in];
        im2col_single(src, c, h, w, geom, out_h, out_w, &mut cols);
        let gout = &grad_output.data()[ni * item_out..(ni + 1) * item_out];
        // dW += dY @ colsᵀ  ([O, CW] @ [CR, CW]ᵀ -> [O, CR]).
        transpose_into(&cols, &mut cols_t, col_rows, col_width);
        matmul_into(
            gout,
            &cols_t,
            grad_weight.data_mut(),
            out_c,
            col_width,
            col_rows,
        );
    }
    Ok(Conv2dGradients {
        grad_input,
        grad_weight,
        grad_bias,
    })
}

/// Reference direct (nested-loop) convolution used to validate the im2col
/// path in tests and property checks. Slow; not for production use.
///
/// # Errors
///
/// As for [`conv2d`].
pub fn conv2d_naive(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    geom: ConvGeometry,
) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (out_c, _, kh, kw) = weight.shape().as_nchw()?;
    let (out_h, out_w) = geom.output_hw(h, w)?;
    let mut out = Tensor::zeros([n, out_c, out_h, out_w]);
    for ni in 0..n {
        for oc in 0..out_c {
            for oh in 0..out_h {
                for ow in 0..out_w {
                    let mut acc = bias.map_or(0.0, |b| b.at(oc));
                    for ic in 0..c {
                        for ki in 0..kh {
                            for kj in 0..kw {
                                let ih = (oh * geom.stride + ki) as isize - geom.padding as isize;
                                let iw = (ow * geom.stride + kj) as isize - geom.padding as isize;
                                if ih >= 0 && iw >= 0 && (ih as usize) < h && (iw as usize) < w {
                                    acc += input.at4(ni, ic, ih as usize, iw as usize)
                                        * weight.at4(oc, ic, ki, kj);
                                }
                            }
                        }
                    }
                    out.set4(ni, oc, oh, ow, acc);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validates_arguments() {
        assert!(ConvGeometry::new(0, 3, 1, 0).is_err());
        assert!(ConvGeometry::new(3, 3, 0, 0).is_err());
        assert!(ConvGeometry::new(3, 3, 1, 0).is_ok());
    }

    #[test]
    fn output_hw_matches_formula() {
        let g = ConvGeometry::square(3, 1, 1).unwrap();
        assert_eq!(g.output_hw(8, 8).unwrap(), (8, 8));
        let g = ConvGeometry::square(3, 2, 1).unwrap();
        assert_eq!(g.output_hw(8, 8).unwrap(), (4, 4));
        let g = ConvGeometry::square(5, 1, 0).unwrap();
        assert!(g.output_hw(3, 3).is_err());
    }

    #[test]
    fn identity_1x1_convolution() {
        let x = Tensor::from_fn([2, 3, 4, 4], |i| (i as f32).sin());
        let mut w = Tensor::zeros([3, 3, 1, 1]);
        for c in 0..3 {
            w.set4(c, c, 0, 0, 1.0);
        }
        let g = ConvGeometry::square(1, 1, 0).unwrap();
        let y = conv2d(&x, &w, None, g).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn matches_naive_reference_with_padding_and_stride() {
        let x = Tensor::from_fn([2, 3, 7, 6], |i| ((i * 37 % 17) as f32 - 8.0) * 0.25);
        let w = Tensor::from_fn([4, 3, 3, 3], |i| ((i * 13 % 11) as f32 - 5.0) * 0.1);
        let b = Tensor::from_slice(&[0.5, -0.5, 0.25, 0.0]);
        for (stride, pad) in [(1, 0), (1, 1), (2, 1), (2, 0), (3, 2)] {
            let g = ConvGeometry::square(3, stride, pad).unwrap();
            let fast = conv2d(&x, &w, Some(&b), g).unwrap();
            let slow = conv2d_naive(&x, &w, Some(&b), g).unwrap();
            assert!(
                fast.max_abs_diff(&slow).unwrap() < 1e-4,
                "stride={stride} pad={pad}"
            );
        }
    }

    #[test]
    fn bias_adds_per_output_channel() {
        let x = Tensor::zeros([1, 1, 3, 3]);
        let w = Tensor::zeros([2, 1, 3, 3]);
        let b = Tensor::from_slice(&[1.5, -2.0]);
        let g = ConvGeometry::square(3, 1, 1).unwrap();
        let y = conv2d(&x, &w, Some(&b), g).unwrap();
        for h in 0..3 {
            for wd in 0..3 {
                assert_eq!(y.at4(0, 0, h, wd), 1.5);
                assert_eq!(y.at4(0, 1, h, wd), -2.0);
            }
        }
    }

    #[test]
    fn channel_mismatch_is_rejected() {
        let x = Tensor::zeros([1, 2, 4, 4]);
        let w = Tensor::zeros([1, 3, 3, 3]);
        let g = ConvGeometry::square(3, 1, 1).unwrap();
        assert!(conv2d(&x, &w, None, g).is_err());
    }

    #[test]
    fn backward_matches_finite_differences() {
        let x = Tensor::from_fn([1, 2, 5, 5], |i| ((i * 31 % 13) as f32 - 6.0) * 0.1);
        let w = Tensor::from_fn([3, 2, 3, 3], |i| ((i * 7 % 9) as f32 - 4.0) * 0.1);
        let b = Tensor::from_slice(&[0.1, -0.2, 0.3]);
        let g = ConvGeometry::square(3, 2, 1).unwrap();
        // Loss = sum of outputs, so upstream gradient is all-ones.
        let y = conv2d(&x, &w, Some(&b), g).unwrap();
        let gout = Tensor::ones(y.shape().clone());
        let grads = conv2d_backward(&x, &w, &gout, g).unwrap();
        let eps = 1e-2f32;
        let loss = |xt: &Tensor, wt: &Tensor, bt: &Tensor| -> f32 {
            conv2d(xt, wt, Some(bt), g).unwrap().sum()
        };
        // Check a scattering of coordinates in each gradient.
        for idx in [0usize, 7, 23, 49] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (grads.grad_input.at(idx) - fd).abs() < 1e-2,
                "input idx {idx}: analytic {} vs fd {fd}",
                grads.grad_input.at(idx)
            );
        }
        for idx in [0usize, 11, 35, 53] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!(
                (grads.grad_weight.at(idx) - fd).abs() < 1e-2,
                "weight idx {idx}: analytic {} vs fd {fd}",
                grads.grad_weight.at(idx)
            );
        }
        for idx in 0..3 {
            let mut bp = b.clone();
            bp.data_mut()[idx] += eps;
            let mut bm = b.clone();
            bm.data_mut()[idx] -= eps;
            let fd = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!((grads.grad_bias.at(idx) - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        let c = 2;
        let (h, w) = (5, 4);
        let g = ConvGeometry::square(3, 2, 1).unwrap();
        let (oh, ow) = g.output_hw(h, w).unwrap();
        let col_len = c * 9 * oh * ow;
        let x: Vec<f32> = (0..c * h * w).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..col_len).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut cols = vec![0.0; col_len];
        im2col_single(&x, c, h, w, g, oh, ow, &mut cols);
        let mut folded = vec![0.0; c * h * w];
        col2im_single(&y, c, h, w, g, oh, ow, &mut folded);
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&folded).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
