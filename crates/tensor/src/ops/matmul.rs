//! Matrix multiplication and transpose kernels.
//!
//! These are the hot paths of both ANN training (via im2col convolution) and
//! SNN simulation (synaptic current computation), so they are written with an
//! `i-k-j` loop order that streams the output row while broadcasting a single
//! left-hand element — the classic cache-friendly ordering for row-major
//! operands — rather than the naive dot-product order.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Computes the matrix product `a @ b` of two rank-2 tensors.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either input is not rank 2, or
/// [`TensorError::MatmulDimMismatch`] if `a.cols != b.rows`.
///
/// # Examples
///
/// ```
/// use tcl_tensor::{ops, Tensor};
///
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let identity = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(ops::matmul(&a, &identity)?, a);
/// # Ok::<(), tcl_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros([m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// Computes `aᵀ @ b` without materializing the transpose.
///
/// `a` is `[k, m]`, `b` is `[k, n]`, and the result is `[m, n]`. Used by the
/// convolution backward pass (weight gradients).
///
/// # Errors
///
/// Returns a rank or dimension mismatch error as in [`matmul`].
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: m,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros([m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    // out[i][j] = sum_p a[p][i] * b[p][j]  — accumulate rank-1 updates per p,
    // streaming rows of both operands.
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Ok(out)
}

/// Computes `a @ bᵀ` without materializing the transpose.
///
/// `a` is `[m, k]`, `b` is `[n, k]`, and the result is `[m, n]`. Used by the
/// convolution backward pass (input gradients).
///
/// # Errors
///
/// Returns a rank or dimension mismatch error as in [`matmul`].
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (n, k2) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros([m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
    Ok(out)
}

/// Raw `[m,k] @ [k,n] -> [m,n]` kernel over contiguous slices.
///
/// `out` is accumulated into (callers must zero it first if they want a pure
/// product). Exposed so the SNN simulator can reuse preallocated buffers.
///
/// # Panics
///
/// Panics (debug assertions) if the slice lengths are inconsistent with the
/// stated dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                // Spike trains are mostly zeros; skipping zero multiplicands
                // is a large win in SNN simulation and harmless elsewhere.
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if the input is not rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let (m, n) = a.shape().as_matrix()?;
    let mut out = Tensor::zeros([n, m]);
    let ad = a.data();
    let od = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            od[j * m + i] = ad[i * n + j];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec([rows, cols], v.to_vec()).unwrap()
    }

    #[test]
    fn small_product_is_correct() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let id = t2(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn dim_mismatch_is_rejected() {
        let a = t2(2, 3, &[0.0; 6]);
        let b = t2(2, 3, &[0.0; 6]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn rank_mismatch_is_rejected() {
        let a = Tensor::zeros([2, 3, 1]);
        let b = Tensor::zeros([3, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = t2(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 4, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let expected = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(matmul_tn(&a, &b).unwrap(), expected);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t2(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = t2(4, 3, &(0..12).map(|i| i as f32 - 4.0).collect::<Vec<_>>());
        let expected = matmul(&a, &transpose(&b).unwrap()).unwrap();
        let got = matmul_nt(&a, &b).unwrap();
        assert!(got.max_abs_diff(&expected).unwrap() < 1e-5);
    }

    #[test]
    fn transpose_is_involution() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(transpose(&transpose(&a).unwrap()).unwrap(), a);
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [1.0, 1.0, 1.0, 1.0];
        matmul_into(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, [6.0, 7.0, 8.0, 9.0]);
    }
}
