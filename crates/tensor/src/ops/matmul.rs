//! Matrix multiplication and transpose kernels.
//!
//! These are the hot paths of both ANN training (via im2col convolution) and
//! SNN simulation (synaptic current computation). The dense kernel is
//! cache-blocked and register-tiled: the output is computed in `MR`×`NR`
//! tiles whose accumulators live in registers across the **entire** shared
//! dimension. Full tiles run through the runtime-dispatched SIMD
//! micro-kernel [`tcl_simd::gebp_4x16`] (AVX2+FMA, portable 8-wide, or
//! scalar — see [`crate::simd`]); ragged edges keep the autovectorized
//! scalar tile. Large products additionally fan out across threads (see
//! [`crate::par`]), splitting only along output rows.
//!
//! # Determinism
//!
//! Every output element is accumulated in ascending `k` order with exactly
//! one store, and rows are computed independently, so the result is bitwise
//! identical across thread counts, row partitions, and tile shapes **for a
//! fixed SIMD level**. The level is resolved once per call
//! ([`tcl_simd::current`]) and passed to every worker, so a product never
//! mixes levels. `Scalar` and `Wide` are bitwise identical; `Avx2` fuses
//! multiply-adds and differs within an accumulated-rounding bound (pin
//! `TCL_SIMD=scalar` to replay reference numerics). The `*_with` variants
//! take an explicit [`Parallelism`] budget; the plain entry points use the
//! process default ([`crate::par::current`], i.e. `TCL_THREADS`).
//!
//! # Zero-skipping
//!
//! The seed implementation skipped `a[i][p] == 0.0` multiplicands
//! everywhere. That is only valid when the right-hand side is finite
//! (`0.0 * NaN` is `NaN`, not `0.0`), so the skip now lives solely in
//! [`matmul_into_sparse`], the kernel the SNN simulator uses for mostly-zero
//! spike matrices; the dense kernels are IEEE-faithful.

use crate::error::{Result, TensorError};
use crate::par::{self, Parallelism};
use crate::tensor::Tensor;
use tcl_simd::Level;

/// Rows per register tile; must match [`tcl_simd::kernels::MR`].
const MR: usize = tcl_simd::kernels::MR;
/// Columns per register tile (two 8-lane vectors); must match
/// [`tcl_simd::kernels::NR`].
const NR: usize = tcl_simd::kernels::NR;
/// Edge length of the cache blocks used by [`transpose_into`].
const TRANSPOSE_BLOCK: usize = 32;
/// Minimum `m·k·n` volume before a matmul fans out across threads.
const PAR_MIN_VOLUME: usize = 1 << 18;

/// Computes the matrix product `a @ b` of two rank-2 tensors.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either input is not rank 2, or
/// [`TensorError::MatmulDimMismatch`] if `a.cols != b.rows`.
///
/// # Examples
///
/// ```
/// use tcl_tensor::{ops, Tensor};
///
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let identity = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(ops::matmul(&a, &identity)?, a);
/// # Ok::<(), tcl_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_with(par::current(), a, b)
}

/// [`matmul`] with an explicit thread budget.
///
/// # Errors
///
/// As for [`matmul`].
pub fn matmul_with(par: Parallelism, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros([m, n]);
    matmul_into_with(par, a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// Computes `aᵀ @ b` where `a` is `[k, m]` and `b` is `[k, n]`.
///
/// Implemented as a blocked transpose of `a` (an `O(k·m)` copy) followed by
/// the blocked dense kernel, which beats a strided direct traversal for the
/// `O(m·k·n)` multiply. Used by the convolution backward pass (input
/// gradients).
///
/// # Errors
///
/// Returns a rank or dimension mismatch error as in [`matmul`].
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_tn_with(par::current(), a, b)
}

/// [`matmul_tn`] with an explicit thread budget.
///
/// # Errors
///
/// As for [`matmul_tn`].
pub fn matmul_tn_with(par: Parallelism, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: m,
            right_rows: k2,
        });
    }
    let mut at = vec![0.0f32; m * k];
    transpose_into(a.data(), &mut at, k, m);
    let mut out = Tensor::zeros([m, n]);
    matmul_into_with(par, &at, b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// Computes `a @ bᵀ` where `a` is `[m, k]` and `b` is `[n, k]`.
///
/// Implemented as a blocked transpose of `b` plus the blocked dense kernel
/// (see [`matmul_tn`]). Used by the convolution backward pass (weight
/// gradients) and fully connected layers.
///
/// # Errors
///
/// Returns a rank or dimension mismatch error as in [`matmul`].
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_nt_with(par::current(), a, b)
}

/// [`matmul_nt`] with an explicit thread budget.
///
/// # Errors
///
/// As for [`matmul_nt`].
pub fn matmul_nt_with(par: Parallelism, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (n, k2) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut bt = vec![0.0f32; k * n];
    transpose_into(b.data(), &mut bt, n, k);
    let mut out = Tensor::zeros([m, n]);
    matmul_into_with(par, a.data(), &bt, out.data_mut(), m, k, n);
    Ok(out)
}

/// Raw `[m,k] @ [k,n] -> [m,n]` kernel over contiguous slices.
///
/// `out` is accumulated into (callers must zero it first if they want a pure
/// product). Exposed so the convolution and SNN paths can reuse preallocated
/// buffers. Uses the process-default thread budget.
///
/// # Panics
///
/// Panics (debug assertions) if the slice lengths are inconsistent with the
/// stated dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_into_with(par::current(), a, b, out, m, k, n);
}

/// [`matmul_into`] with an explicit thread budget.
///
/// Bitwise deterministic: for fixed inputs and shape the result is identical
/// for every `par`, because the row partition only decides *which thread*
/// runs a row, never how a row is computed.
///
/// # Panics
///
/// Panics (debug assertions) if the slice lengths are inconsistent with the
/// stated dimensions.
pub fn matmul_into_with(
    par: Parallelism,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if n == 0 {
        return;
    }
    let _span = tcl_telemetry::span_with("matmul", || {
        vec![("m", m as f64), ("k", k as f64), ("n", n as f64)]
    });
    // Resolve the SIMD level once and hand it to every worker: one product
    // never mixes micro-kernel numerics across its row partition.
    let level = tcl_simd::current();
    // Split only if every worker gets enough rows to amortize a spawn.
    let min_rows = (PAR_MIN_VOLUME / (k * n).max(1)).max(MR);
    par::par_items_mut(par, out, n, MR, min_rows, |first_row, out_rows| {
        let rows = out_rows.len() / n;
        let a_rows = &a[first_row * k..(first_row + rows) * k];
        kernel_rows(level, a_rows, b, out_rows, rows, k, n);
    });
}

/// Dense kernel over a contiguous row range: blocked/register-tiled when the
/// output is at least `NR` wide, row-streaming saxpy otherwise. The path is
/// chosen by shape alone, so it never affects determinism.
///
/// Full `MR`-row bands are packed into a `p`-major scratch buffer once per
/// band, so the hot tile loop streams two contiguous pointers (packed A,
/// B rows) instead of `MR` strided row cursors. Packing copies each A
/// element once per band — `O(rows·k)` against the `O(rows·k·n)` multiply.
/// Full tiles dispatch to [`tcl_simd::gebp_4x16`] at the caller-resolved
/// `level`; ragged edges stay on the scalar [`micro_tile`].
fn kernel_rows(
    level: Level,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
) {
    if n < NR {
        matmul_into_naive(a, b, out, rows, k, n);
        return;
    }
    let full_bands = rows - rows % MR;
    let full_tiles = n - n % NR;
    // A is packed once, `p`-major within each MR-row band
    // (`a_pack[band][p·MR + r] = a[band·MR + r][p]`); each B tile is packed
    // contiguous per `j0`. Both copies are `O(size)` against the `O(m·k·n)`
    // multiply, and they let the hot loop stream two dense cursors with the
    // B tile L1-resident across every band.
    let mut a_pack = vec![0.0f32; full_bands * k];
    for (band, band_pack) in a_pack.chunks_exact_mut(MR * k).enumerate() {
        for r in 0..MR {
            let row = &a[(band * MR + r) * k..(band * MR + r + 1) * k];
            for (p, &v) in row.iter().enumerate() {
                band_pack[p * MR + r] = v;
            }
        }
    }
    let mut b_pack = vec![0.0f32; k * NR];
    let mut j0 = 0;
    while j0 < full_tiles {
        for (bp, brow) in b_pack.chunks_exact_mut(NR).zip(b[j0..].chunks(n)) {
            bp.copy_from_slice(&brow[..NR]);
        }
        for (band, band_pack) in a_pack.chunks_exact(MR * k).enumerate() {
            tcl_simd::gebp_4x16(level, band_pack, &b_pack, k, out, band * MR, j0, n);
        }
        j0 += NR;
    }
    if j0 < n {
        // Ragged right edge: general tile over the original layouts.
        let mut i0 = 0;
        while i0 < full_bands {
            micro_tile(a, b, out, i0, j0, MR, n - j0, k, n);
            i0 += MR;
        }
    }
    // Ragged bottom rows (fewer than MR) take the general tile.
    if full_bands < rows {
        let mut j0 = 0;
        while j0 < n {
            let width = (n - j0).min(NR);
            micro_tile(a, b, out, full_bands, j0, rows - full_bands, width, k, n);
            j0 += NR;
        }
    }
}

/// One `height`×`width` output tile (`height ≤ MR`, `width ≤ NR`): registers
/// accumulate over the full `k` range, then a single `+=` store per element.
#[inline]
#[allow(clippy::too_many_arguments)] // edge-tile kernel: all args are tight-loop geometry
fn micro_tile(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    j0: usize,
    height: usize,
    width: usize,
    k: usize,
    n: usize,
) {
    // Row slices hoisted so the p-loop indexes with a constant bound.
    let a_row = |r: usize| {
        let row = i0 + if r < height { r } else { 0 };
        &a[row * k..(row + 1) * k]
    };
    let a_rows: [&[f32]; MR] = std::array::from_fn(a_row);
    let mut acc = [[0.0f32; NR]; MR];
    if width == NR {
        // Full-width fast path: fixed-size b row lets the c-loop vectorize.
        for p in 0..k {
            let b_row: &[f32; NR] = b[p * n + j0..p * n + j0 + NR]
                .try_into()
                // lint: allow(P1) the slice is exactly NR long by the range
                .expect("width checked");
            for r in 0..height {
                let av = a_rows[r][p];
                for (acc_v, &bv) in acc[r].iter_mut().zip(b_row) {
                    *acc_v += av * bv;
                }
            }
        }
    } else {
        for p in 0..k {
            let b_row = &b[p * n + j0..p * n + j0 + width];
            for r in 0..height {
                let av = a_rows[r][p];
                for (acc_v, &bv) in acc[r][..width].iter_mut().zip(b_row) {
                    *acc_v += av * bv;
                }
            }
        }
    }
    for r in 0..height {
        let o_row = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + width];
        for (o, &acc_v) in o_row.iter_mut().zip(&acc[r][..width]) {
            *o += acc_v;
        }
    }
}

/// Reference `i-k-j` saxpy kernel, IEEE-faithful (no zero-skipping).
///
/// Serves as the narrow-output path of the blocked kernel and as the
/// baseline the criterion benches compare against. Accumulates into `out`.
///
/// # Panics
///
/// Panics (debug assertions) if the slice lengths are inconsistent with the
/// stated dimensions.
pub fn matmul_into_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Sparse-row `[m,k] @ [k,n] -> [m,n]` kernel that skips zero left-hand
/// entries — the seed's zero-skipping saxpy, kept as a dedicated entry point
/// for spike-train matrices (mostly zeros by construction).
///
/// **Caveat:** skipping `a[i][p] == 0.0` also skips `0.0 × NaN` and
/// `0.0 × ±inf`, so this kernel assumes a finite right-hand side. Spiking
/// weights are finite by construction; dense callers must use
/// [`matmul_into`] instead. Accumulates into `out`.
///
/// The surviving (nonzero) row updates run through [`tcl_simd::axpy`] at
/// the process SIMD level, so the kernel's throughput tracks the dense
/// kernel's instead of falling back to scalar saxpy — the zero-skip only
/// pays off when the skip rate beats the vector width (see
/// `tcl-snn::synop`'s density gate).
///
/// # Panics
///
/// Panics (debug assertions) if the slice lengths are inconsistent with the
/// stated dimensions.
pub fn matmul_into_sparse(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let level = tcl_simd::current();
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            tcl_simd::axpy(level, av, &b[p * n..(p + 1) * n], o_row);
        }
    }
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if the input is not rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let (m, n) = a.shape().as_matrix()?;
    let mut out = Tensor::zeros([n, m]);
    transpose_into(a.data(), out.data_mut(), m, n);
    Ok(out)
}

/// Blocked transpose of an `[m, n]` row-major slice into `dst` (`[n, m]`).
///
/// Walks `TRANSPOSE_BLOCK`² blocks so both the row-wise reads and the
/// strided writes stay within a cache-resident footprint, instead of the
/// naive full-row sweep that misses on every write for large `m`.
///
/// # Panics
///
/// Panics (debug assertions) if the slice lengths are not `m * n`.
pub fn transpose_into(src: &[f32], dst: &mut [f32], m: usize, n: usize) {
    debug_assert_eq!(src.len(), m * n);
    debug_assert_eq!(dst.len(), m * n);
    const B: usize = TRANSPOSE_BLOCK;
    let mut i0 = 0;
    while i0 < m {
        let ih = (m - i0).min(B);
        let mut j0 = 0;
        while j0 < n {
            let jw = (n - j0).min(B);
            for i in i0..i0 + ih {
                let s_row = &src[i * n + j0..i * n + j0 + jw];
                for (dj, &v) in s_row.iter().enumerate() {
                    dst[(j0 + dj) * m + i] = v;
                }
            }
            j0 += B;
        }
        i0 += B;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec([rows, cols], v.to_vec()).unwrap()
    }

    /// Pseudo-random but deterministic fill for kernel cross-checks.
    fn fill(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = crate::rng::SeededRng::new(seed);
        rng.uniform_tensor([rows, cols], -1.0, 1.0)
    }

    #[test]
    fn small_product_is_correct() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let id = t2(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn dim_mismatch_is_rejected() {
        let a = t2(2, 3, &[0.0; 6]);
        let b = t2(2, 3, &[0.0; 6]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn rank_mismatch_is_rejected() {
        let a = Tensor::zeros([2, 3, 1]);
        let b = Tensor::zeros([3, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = t2(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 4, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let expected = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(matmul_tn(&a, &b).unwrap(), expected);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t2(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = t2(4, 3, &(0..12).map(|i| i as f32 - 4.0).collect::<Vec<_>>());
        let expected = matmul(&a, &transpose(&b).unwrap()).unwrap();
        let got = matmul_nt(&a, &b).unwrap();
        assert!(got.max_abs_diff(&expected).unwrap() < 1e-5);
    }

    #[test]
    fn transpose_is_involution() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(transpose(&transpose(&a).unwrap()).unwrap(), a);
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [1.0, 1.0, 1.0, 1.0];
        matmul_into(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, [6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn blocked_kernel_matches_naive_on_awkward_shapes() {
        // Cover all tile-edge combinations: rows % MR, cols % NR, narrow
        // outputs, and k both smaller and larger than a tile.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 4, 16),
            (5, 3, 17),
            (7, 33, 15),
            (13, 70, 47),
            (33, 9, 64),
            (3, 128, 2),
        ] {
            let a = fill(m, k, 1 + m as u64);
            let b = fill(k, n, 100 + n as u64);
            let mut naive = vec![0.0f32; m * n];
            matmul_into_naive(a.data(), b.data(), &mut naive, m, k, n);
            for level in tcl_simd::Level::available() {
                let mut blocked = vec![0.0f32; m * n];
                tcl_simd::with_level(level, || {
                    matmul_into_with(
                        Parallelism::serial(),
                        a.data(),
                        b.data(),
                        &mut blocked,
                        m,
                        k,
                        n,
                    );
                });
                match level {
                    // Same inputs, same per-element accumulation order,
                    // unfused arithmetic → bitwise.
                    Level::Scalar | Level::Wide => {
                        assert_eq!(blocked, naive, "{} shape {m}x{k}x{n}", level.name());
                    }
                    // FMA tiles save one rounding per accumulation step.
                    Level::Avx2 => {
                        for (g, w) in blocked.iter().zip(&naive) {
                            assert!(
                                (g - w).abs() <= k as f32 * 1e-5,
                                "avx2 shape {m}x{k}x{n}: {g} vs {w}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dense_kernel_propagates_nonfinite_products() {
        // Regression for the seed's zero-skip bug: 0 · NaN and 0 · inf must
        // reach the output as NaN in the dense kernels.
        let a = t2(1, 2, &[0.0, 1.0]);
        let b = t2(2, 2, &[f32::NAN, f32::INFINITY, 1.0, 2.0]);
        let c = matmul(&a, &b).unwrap();
        assert!(c.at(0).is_nan(), "0 * NaN + 1 * 1 must be NaN, got {c:?}");
        assert!(c.at(1).is_nan(), "0 * inf + 1 * 2 must be NaN, got {c:?}");

        // matmul_tn had the same skip on its left operand.
        let at = transpose(&a).unwrap();
        let c_tn = matmul_tn(&at, &b).unwrap();
        assert!(c_tn.at(0).is_nan() && c_tn.at(1).is_nan(), "{c_tn:?}");

        // The sparse kernel intentionally keeps the skip (finite weights).
        let mut sparse = vec![0.0f32; 2];
        matmul_into_sparse(a.data(), b.data(), &mut sparse, 1, 2, 2);
        assert_eq!(sparse, [1.0, 2.0]);
    }

    #[test]
    fn sparse_kernel_matches_dense_on_spike_like_input() {
        let mut rng = crate::rng::SeededRng::new(5);
        let (m, k, n) = (6, 40, 30);
        // ~80% zeros, like a spike raster.
        let spikes: Vec<f32> = (0..m * k)
            .map(|_| {
                if rng.uniform(0.0, 1.0) < 0.2 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let b = fill(k, n, 9);
        let mut dense = vec![0.0f32; m * n];
        let mut sparse = vec![0.0f32; m * n];
        matmul_into_with(
            Parallelism::serial(),
            &spikes,
            b.data(),
            &mut dense,
            m,
            k,
            n,
        );
        matmul_into_sparse(&spikes, b.data(), &mut sparse, m, k, n);
        for (d, s) in dense.iter().zip(&sparse) {
            assert!((d - s).abs() < 1e-5, "{d} vs {s}");
        }
    }

    #[test]
    fn blocked_transpose_matches_naive() {
        for &(m, n) in &[(1usize, 1usize), (3, 5), (31, 33), (64, 64), (70, 130)] {
            let a = fill(m, n, 7 + (m * n) as u64);
            let mut naive = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    naive[j * m + i] = a.data()[i * n + j];
                }
            }
            let blocked = transpose(&a).unwrap();
            assert_eq!(blocked.data(), &naive[..], "shape {m}x{n}");
            assert_eq!(blocked.dims(), &[n, m]);
        }
    }

    #[test]
    fn parallel_matmul_is_bitwise_equal_to_serial() {
        let (m, k, n) = (37, 23, 29);
        let a = fill(m, k, 21);
        let b = fill(k, n, 22);
        let mut serial = vec![0.0f32; m * n];
        matmul_into_with(
            Parallelism::serial(),
            a.data(),
            b.data(),
            &mut serial,
            m,
            k,
            n,
        );
        for threads in [2usize, 3, 8] {
            let mut parallel = vec![0.0f32; m * n];
            matmul_into_with(
                Parallelism::new(threads),
                a.data(),
                b.data(),
                &mut parallel,
                m,
                k,
                n,
            );
            assert_eq!(serial, parallel, "threads {threads}");
        }
    }

    #[test]
    fn degenerate_dims_are_handled() {
        // m = 0, k = 0, n = 0 must not panic and must respect accumulate
        // semantics (k = 0 adds nothing).
        let mut out: Vec<f32> = vec![];
        matmul_into(&[], &[0.0; 16], &mut out, 0, 4, 4);

        let mut out = [7.0f32; 4];
        matmul_into(&[], &[], &mut out, 2, 0, 2);
        assert_eq!(out, [7.0; 4]);

        let mut out: Vec<f32> = vec![];
        matmul_into(&[1.0, 2.0], &[], &mut out, 1, 2, 0);
    }
}
