//! Numeric kernels: matrix products, convolutions, pooling, and reductions.
//!
//! All kernels are pure functions over [`crate::Tensor`]; layers in the `nn`
//! crate compose them and own the caching required for backpropagation.

mod conv;
mod matmul;
mod pool;
mod reduce;

pub use conv::{
    col2im_single, conv2d, conv2d_backward, conv2d_naive, im2col_single, Conv2dGradients,
    ConvGeometry,
};
pub use matmul::{
    matmul, matmul_into, matmul_into_naive, matmul_into_sparse, matmul_into_with, matmul_nt,
    matmul_nt_with, matmul_tn, matmul_tn_with, matmul_with, transpose, transpose_into,
};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, max_pool2d,
    max_pool2d_backward, MaxPoolOutput,
};
pub use reduce::{accuracy, argmax_rows, logsumexp_rows, max_rows, softmax_rows, topk_accuracy};
