//! Spatial pooling kernels.
//!
//! The conversion pipeline (Section 3.1 of the paper) replaces max-pooling by
//! average-pooling, because an average of spike trains is itself a valid
//! synaptic current while a max is not. Both are provided: max-pooling for
//! the unconstrained ANN baselines, average pooling for convertible networks.

use crate::error::{Result, TensorError};
use crate::ops::conv::ConvGeometry;
use crate::tensor::Tensor;

/// Forward average pooling with window `kernel`, stride `stride`, no padding.
///
/// Input `[N, C, H, W]`, output `[N, C, H/stride-ish, W/stride-ish]` per the
/// usual floor formula.
///
/// # Errors
///
/// Returns an error for rank mismatches or a window larger than the input.
///
/// # Examples
///
/// ```
/// use tcl_tensor::{ops, Tensor};
///
/// let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 3.0, 5.0, 7.0])?;
/// let y = ops::avg_pool2d(&x, 2, 2)?;
/// assert_eq!(y.data(), &[4.0]);
/// # Ok::<(), tcl_tensor::TensorError>(())
/// ```
pub fn avg_pool2d(input: &Tensor, kernel: usize, stride: usize) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let geom = ConvGeometry::square(kernel, stride, 0)?;
    let (oh, ow) = geom.output_hw(h, w)?;
    let mut out = Tensor::zeros([n, c, oh, ow]);
    let inv = 1.0 / (kernel * kernel) as f32;
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            acc += input.at4(ni, ci, y * stride + ky, x * stride + kx);
                        }
                    }
                    out.set4(ni, ci, y, x, acc * inv);
                }
            }
        }
    }
    Ok(out)
}

/// Backward average pooling: spreads each output gradient uniformly over its
/// window.
///
/// # Errors
///
/// Returns an error if `grad_output`'s shape disagrees with the forward
/// geometry.
pub fn avg_pool2d_backward(
    input_shape: &crate::Shape,
    grad_output: &Tensor,
    kernel: usize,
    stride: usize,
) -> Result<Tensor> {
    let (n, c, h, w) = input_shape.as_nchw()?;
    let geom = ConvGeometry::square(kernel, stride, 0)?;
    let (oh, ow) = geom.output_hw(h, w)?;
    let (gn, gc, gh, gw) = grad_output.shape().as_nchw()?;
    if (gn, gc, gh, gw) != (n, c, oh, ow) {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c, oh, ow],
            right: grad_output.dims().to_vec(),
        });
    }
    let mut grad_input = Tensor::zeros([n, c, h, w]);
    let inv = 1.0 / (kernel * kernel) as f32;
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let g = grad_output.at4(ni, ci, y, x) * inv;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let (iy, ix) = (y * stride + ky, x * stride + kx);
                            let cur = grad_input.at4(ni, ci, iy, ix);
                            grad_input.set4(ni, ci, iy, ix, cur + g);
                        }
                    }
                }
            }
        }
    }
    Ok(grad_input)
}

/// Result of a max-pooling forward pass: the pooled tensor plus the flat
/// input index of each window's winner (needed by the backward pass).
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled values, `[N, C, out_h, out_w]`.
    pub output: Tensor,
    /// For each output element, the flat index into the input buffer of the
    /// element that won its window.
    pub argmax: Vec<usize>,
}

/// Forward max pooling with window `kernel`, stride `stride`, no padding.
///
/// # Errors
///
/// Returns an error for rank mismatches or a window larger than the input.
pub fn max_pool2d(input: &Tensor, kernel: usize, stride: usize) -> Result<MaxPoolOutput> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let geom = ConvGeometry::square(kernel, stride, 0)?;
    let (oh, ow) = geom.output_hw(h, w)?;
    let mut out = Tensor::zeros([n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let mut oidx = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let (iy, ix) = (y * stride + ky, x * stride + kx);
                            let v = input.at4(ni, ci, iy, ix);
                            if v > best {
                                best = v;
                                best_idx = ((ni * c + ci) * h + iy) * w + ix;
                            }
                        }
                    }
                    out.set4(ni, ci, y, x, best);
                    argmax[oidx] = best_idx;
                    oidx += 1;
                }
            }
        }
    }
    Ok(MaxPoolOutput {
        output: out,
        argmax,
    })
}

/// Backward max pooling: routes each output gradient to its window's winner.
///
/// # Errors
///
/// Returns an error if `grad_output` length disagrees with `argmax`.
pub fn max_pool2d_backward(
    input_shape: &crate::Shape,
    grad_output: &Tensor,
    argmax: &[usize],
) -> Result<Tensor> {
    if grad_output.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: argmax.len(),
            actual: grad_output.len(),
        });
    }
    let mut grad_input = Tensor::zeros(input_shape.clone());
    let gi = grad_input.data_mut();
    for (g, &idx) in grad_output.data().iter().zip(argmax) {
        gi[idx] += g;
    }
    Ok(grad_input)
}

/// Global average pooling: `[N, C, H, W]` → `[N, C, 1, 1]`.
///
/// Used as the final spatial reduction in the ResNet family; like average
/// pooling it is spike-compatible.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let mut out = Tensor::zeros([n, c, 1, 1]);
    let plane = h * w;
    let inv = 1.0 / plane as f32;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * plane;
            let s: f32 = input.data()[base..base + plane].iter().sum();
            out.data_mut()[ni * c + ci] = s * inv;
        }
    }
    Ok(out)
}

/// Backward of [`global_avg_pool`].
///
/// # Errors
///
/// Returns an error if `grad_output` is not `[N, C, 1, 1]` for the given
/// input shape.
pub fn global_avg_pool_backward(
    input_shape: &crate::Shape,
    grad_output: &Tensor,
) -> Result<Tensor> {
    let (n, c, h, w) = input_shape.as_nchw()?;
    let (gn, gc, gh, gw) = grad_output.shape().as_nchw()?;
    if (gn, gc, gh, gw) != (n, c, 1, 1) {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c, 1, 1],
            right: grad_output.dims().to_vec(),
        });
    }
    let plane = h * w;
    let inv = 1.0 / plane as f32;
    let mut grad_input = Tensor::zeros([n, c, h, w]);
    for ni in 0..n {
        for ci in 0..c {
            let g = grad_output.data()[ni * c + ci] * inv;
            let base = (ni * c + ci) * plane;
            for v in grad_input.data_mut()[base..base + plane].iter_mut() {
                *v = g;
            }
        }
    }
    Ok(grad_input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn avg_pool_averages_windows() {
        let x = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let y = avg_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let shape = Shape::new([1, 1, 4, 4]);
        let gout = Tensor::from_vec([1, 1, 2, 2], vec![4.0, 8.0, 12.0, 16.0]).unwrap();
        let gin = avg_pool2d_backward(&shape, &gout, 2, 2).unwrap();
        assert_eq!(gin.at4(0, 0, 0, 0), 1.0);
        assert_eq!(gin.at4(0, 0, 0, 2), 2.0);
        assert_eq!(gin.at4(0, 0, 3, 3), 4.0);
        assert!((gin.sum() - gout.sum()).abs() < 1e-6);
    }

    #[test]
    fn max_pool_takes_window_maximum() {
        let x = Tensor::from_vec(
            [1, 1, 2, 4],
            vec![1.0, 5.0, 2.0, 0.0, 3.0, -1.0, 4.0, 9.0],
        )
        .unwrap();
        let y = max_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.output.data(), &[5.0, 9.0]);
        assert_eq!(y.argmax, vec![1, 7]);
    }

    #[test]
    fn max_pool_backward_routes_to_winner() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 5.0, 2.0, 0.0]).unwrap();
        let fwd = max_pool2d(&x, 2, 2).unwrap();
        let gout = Tensor::from_vec([1, 1, 1, 1], vec![3.0]).unwrap();
        let gin = max_pool2d_backward(x.shape(), &gout, &fwd.argmax).unwrap();
        assert_eq!(gin.data(), &[0.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_with_stride_one_overlaps() {
        let x = Tensor::from_fn([1, 1, 3, 3], |i| i as f32);
        let y = avg_pool2d(&x, 2, 1).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[2.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn global_avg_pool_reduces_spatial_dims() {
        let x = Tensor::from_fn([2, 3, 2, 2], |i| i as f32);
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.dims(), &[2, 3, 1, 1]);
        assert_eq!(y.data()[0], 1.5);
        assert_eq!(y.data()[5], 21.5);
    }

    #[test]
    fn global_avg_pool_backward_conserves_gradient_mass() {
        let shape = Shape::new([1, 2, 3, 3]);
        let gout = Tensor::from_vec([1, 2, 1, 1], vec![9.0, 18.0]).unwrap();
        let gin = global_avg_pool_backward(&shape, &gout).unwrap();
        assert!((gin.sum() - 27.0).abs() < 1e-5);
        assert!((gin.at4(0, 0, 1, 1) - 1.0).abs() < 1e-6);
        assert!((gin.at4(0, 1, 2, 2) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn window_larger_than_input_is_rejected() {
        let x = Tensor::zeros([1, 1, 2, 2]);
        assert!(avg_pool2d(&x, 3, 1).is_err());
        assert!(max_pool2d(&x, 4, 1).is_err());
    }
}
