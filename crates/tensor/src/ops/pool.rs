//! Spatial pooling kernels.
//!
//! The conversion pipeline (Section 3.1 of the paper) replaces max-pooling by
//! average-pooling, because an average of spike trains is itself a valid
//! synaptic current while a max is not. Both are provided: max-pooling for
//! the unconstrained ANN baselines, average pooling for convertible networks.
//!
//! All kernels iterate `[N, C]` planes through contiguous slices and fan the
//! plane loop out across threads (see [`crate::par`]); planes are fully
//! independent, so results are bitwise identical for every thread count.

use crate::error::{Result, TensorError};
use crate::ops::conv::ConvGeometry;
use crate::par::{self, min_items_per_worker};
use crate::tensor::Tensor;

/// Forward average pooling with window `kernel`, stride `stride`, no padding.
///
/// Input `[N, C, H, W]`, output `[N, C, H/stride-ish, W/stride-ish]` per the
/// usual floor formula.
///
/// # Errors
///
/// Returns an error for rank mismatches or a window larger than the input.
///
/// # Examples
///
/// ```
/// use tcl_tensor::{ops, Tensor};
///
/// let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 3.0, 5.0, 7.0])?;
/// let y = ops::avg_pool2d(&x, 2, 2)?;
/// assert_eq!(y.data(), &[4.0]);
/// # Ok::<(), tcl_tensor::TensorError>(())
/// ```
pub fn avg_pool2d(input: &Tensor, kernel: usize, stride: usize) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let geom = ConvGeometry::square(kernel, stride, 0)?;
    let (oh, ow) = geom.output_hw(h, w)?;
    let _span = tcl_telemetry::span_with("avg_pool2d", || {
        vec![
            ("planes", (n * c) as f64),
            ("kernel", kernel as f64),
            ("stride", stride as f64),
        ]
    });
    let mut out = Tensor::zeros([n, c, oh, ow]);
    let inv = 1.0 / (kernel * kernel) as f32;
    let in_plane = h * w;
    let out_plane = oh * ow;
    let min_planes = min_items_per_worker(out_plane * kernel * kernel);
    par::par_items_mut(
        par::current(),
        out.data_mut(),
        out_plane,
        1,
        min_planes,
        |first_plane, run| {
            for (i, dst) in run.chunks_exact_mut(out_plane).enumerate() {
                let src = &input.data()[(first_plane + i) * in_plane..][..in_plane];
                for y in 0..oh {
                    for x in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..kernel {
                            let row = &src[(y * stride + ky) * w + x * stride..][..kernel];
                            for &v in row {
                                acc += v;
                            }
                        }
                        dst[y * ow + x] = acc * inv;
                    }
                }
            }
        },
    );
    Ok(out)
}

/// Backward average pooling: spreads each output gradient uniformly over its
/// window.
///
/// # Errors
///
/// Returns an error if `grad_output`'s shape disagrees with the forward
/// geometry.
pub fn avg_pool2d_backward(
    input_shape: &crate::Shape,
    grad_output: &Tensor,
    kernel: usize,
    stride: usize,
) -> Result<Tensor> {
    let (n, c, h, w) = input_shape.as_nchw()?;
    let geom = ConvGeometry::square(kernel, stride, 0)?;
    let (oh, ow) = geom.output_hw(h, w)?;
    let (gn, gc, gh, gw) = grad_output.shape().as_nchw()?;
    if (gn, gc, gh, gw) != (n, c, oh, ow) {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c, oh, ow],
            right: grad_output.dims().to_vec(),
        });
    }
    let mut grad_input = Tensor::zeros([n, c, h, w]);
    let inv = 1.0 / (kernel * kernel) as f32;
    let in_plane = h * w;
    let out_plane = oh * ow;
    let min_planes = min_items_per_worker(out_plane * kernel * kernel);
    par::par_items_mut(
        par::current(),
        grad_input.data_mut(),
        in_plane,
        1,
        min_planes,
        |first_plane, run| {
            for (i, dst) in run.chunks_exact_mut(in_plane).enumerate() {
                let gout = &grad_output.data()[(first_plane + i) * out_plane..][..out_plane];
                for y in 0..oh {
                    for x in 0..ow {
                        let g = gout[y * ow + x] * inv;
                        for ky in 0..kernel {
                            let row = &mut dst[(y * stride + ky) * w + x * stride..][..kernel];
                            for v in row {
                                *v += g;
                            }
                        }
                    }
                }
            }
        },
    );
    Ok(grad_input)
}

/// Result of a max-pooling forward pass: the pooled tensor plus the flat
/// input index of each window's winner (needed by the backward pass).
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled values, `[N, C, out_h, out_w]`.
    pub output: Tensor,
    /// For each output element, the flat index into the input buffer of the
    /// element that won its window.
    pub argmax: Vec<usize>,
}

/// Forward max pooling with window `kernel`, stride `stride`, no padding.
///
/// # Errors
///
/// Returns an error for rank mismatches or a window larger than the input.
pub fn max_pool2d(input: &Tensor, kernel: usize, stride: usize) -> Result<MaxPoolOutput> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let geom = ConvGeometry::square(kernel, stride, 0)?;
    let (oh, ow) = geom.output_hw(h, w)?;
    let mut out = Tensor::zeros([n, c, oh, ow]);
    let in_plane = h * w;
    let out_plane = oh * ow;
    let mut argmax = vec![0usize; n * c * out_plane];
    let min_planes = min_items_per_worker(out_plane * kernel * kernel);
    par::par_items_mut2(
        par::current(),
        out.data_mut(),
        out_plane,
        &mut argmax,
        out_plane,
        1,
        min_planes,
        |first_plane, run, arg_run| {
            for (i, (dst, args)) in run
                .chunks_exact_mut(out_plane)
                .zip(arg_run.chunks_exact_mut(out_plane))
                .enumerate()
            {
                let plane = first_plane + i;
                let base = plane * in_plane;
                let src = &input.data()[base..base + in_plane];
                for y in 0..oh {
                    for x in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..kernel {
                            let iy = y * stride + ky;
                            for kx in 0..kernel {
                                let ix = x * stride + kx;
                                let v = src[iy * w + ix];
                                if v > best {
                                    best = v;
                                    best_idx = base + iy * w + ix;
                                }
                            }
                        }
                        dst[y * ow + x] = best;
                        args[y * ow + x] = best_idx;
                    }
                }
            }
        },
    );
    Ok(MaxPoolOutput {
        output: out,
        argmax,
    })
}

/// Backward max pooling: routes each output gradient to its window's winner.
///
/// # Errors
///
/// Returns an error if `grad_output` length disagrees with `argmax`.
pub fn max_pool2d_backward(
    input_shape: &crate::Shape,
    grad_output: &Tensor,
    argmax: &[usize],
) -> Result<Tensor> {
    if grad_output.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: argmax.len(),
            actual: grad_output.len(),
        });
    }
    let mut grad_input = Tensor::zeros(input_shape.clone());
    let gi = grad_input.data_mut();
    for (g, &idx) in grad_output.data().iter().zip(argmax) {
        gi[idx] += g;
    }
    Ok(grad_input)
}

/// Global average pooling: `[N, C, H, W]` → `[N, C, 1, 1]`.
///
/// Used as the final spatial reduction in the ResNet family; like average
/// pooling it is spike-compatible.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let mut out = Tensor::zeros([n, c, 1, 1]);
    let plane = h * w;
    let inv = 1.0 / plane as f32;
    let min_planes = min_items_per_worker(plane);
    par::par_items_mut(
        par::current(),
        out.data_mut(),
        1,
        1,
        min_planes,
        |first_plane, run| {
            for (i, dst) in run.iter_mut().enumerate() {
                let base = (first_plane + i) * plane;
                let s: f32 = input.data()[base..base + plane].iter().sum();
                *dst = s * inv;
            }
        },
    );
    Ok(out)
}

/// Backward of [`global_avg_pool`].
///
/// # Errors
///
/// Returns an error if `grad_output` is not `[N, C, 1, 1]` for the given
/// input shape.
pub fn global_avg_pool_backward(
    input_shape: &crate::Shape,
    grad_output: &Tensor,
) -> Result<Tensor> {
    let (n, c, h, w) = input_shape.as_nchw()?;
    let (gn, gc, gh, gw) = grad_output.shape().as_nchw()?;
    if (gn, gc, gh, gw) != (n, c, 1, 1) {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c, 1, 1],
            right: grad_output.dims().to_vec(),
        });
    }
    let plane = h * w;
    let inv = 1.0 / plane as f32;
    let mut grad_input = Tensor::zeros([n, c, h, w]);
    let min_planes = min_items_per_worker(plane);
    par::par_items_mut(
        par::current(),
        grad_input.data_mut(),
        plane,
        1,
        min_planes,
        |first_plane, run| {
            for (i, dst) in run.chunks_exact_mut(plane).enumerate() {
                let g = grad_output.data()[first_plane + i] * inv;
                dst.fill(g);
            }
        },
    );
    Ok(grad_input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn avg_pool_averages_windows() {
        let x = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let y = avg_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let shape = Shape::new([1, 1, 4, 4]);
        let gout = Tensor::from_vec([1, 1, 2, 2], vec![4.0, 8.0, 12.0, 16.0]).unwrap();
        let gin = avg_pool2d_backward(&shape, &gout, 2, 2).unwrap();
        assert_eq!(gin.at4(0, 0, 0, 0), 1.0);
        assert_eq!(gin.at4(0, 0, 0, 2), 2.0);
        assert_eq!(gin.at4(0, 0, 3, 3), 4.0);
        assert!((gin.sum() - gout.sum()).abs() < 1e-6);
    }

    #[test]
    fn max_pool_takes_window_maximum() {
        let x =
            Tensor::from_vec([1, 1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, -1.0, 4.0, 9.0]).unwrap();
        let y = max_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.output.data(), &[5.0, 9.0]);
        assert_eq!(y.argmax, vec![1, 7]);
    }

    #[test]
    fn max_pool_backward_routes_to_winner() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 5.0, 2.0, 0.0]).unwrap();
        let fwd = max_pool2d(&x, 2, 2).unwrap();
        let gout = Tensor::from_vec([1, 1, 1, 1], vec![3.0]).unwrap();
        let gin = max_pool2d_backward(x.shape(), &gout, &fwd.argmax).unwrap();
        assert_eq!(gin.data(), &[0.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_with_stride_one_overlaps() {
        let x = Tensor::from_fn([1, 1, 3, 3], |i| i as f32);
        let y = avg_pool2d(&x, 2, 1).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[2.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn global_avg_pool_reduces_spatial_dims() {
        let x = Tensor::from_fn([2, 3, 2, 2], |i| i as f32);
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.dims(), &[2, 3, 1, 1]);
        assert_eq!(y.data()[0], 1.5);
        assert_eq!(y.data()[5], 21.5);
    }

    #[test]
    fn global_avg_pool_backward_conserves_gradient_mass() {
        let shape = Shape::new([1, 2, 3, 3]);
        let gout = Tensor::from_vec([1, 2, 1, 1], vec![9.0, 18.0]).unwrap();
        let gin = global_avg_pool_backward(&shape, &gout).unwrap();
        assert!((gin.sum() - 27.0).abs() < 1e-5);
        assert!((gin.at4(0, 0, 1, 1) - 1.0).abs() < 1e-6);
        assert!((gin.at4(0, 1, 2, 2) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn window_larger_than_input_is_rejected() {
        let x = Tensor::zeros([1, 1, 2, 2]);
        assert!(avg_pool2d(&x, 3, 1).is_err());
        assert!(max_pool2d(&x, 4, 1).is_err());
    }

    #[test]
    fn pooling_is_thread_count_invariant() {
        // Plane fan-out must not change any result; exercised via the
        // with_serial escape hatch versus the default budget.
        let x = Tensor::from_fn([3, 4, 6, 6], |i| ((i * 29 % 23) as f32 - 11.0) * 0.3);
        let par_avg = avg_pool2d(&x, 2, 2).unwrap();
        let par_max = max_pool2d(&x, 3, 1).unwrap();
        let (ser_avg, ser_max) =
            crate::par::with_serial(|| (avg_pool2d(&x, 2, 2), max_pool2d(&x, 3, 1)));
        assert_eq!(par_avg, ser_avg.unwrap());
        let ser_max = ser_max.unwrap();
        assert_eq!(par_max.output, ser_max.output);
        assert_eq!(par_max.argmax, ser_max.argmax);
    }
}
