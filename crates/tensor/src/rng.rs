//! Deterministic random number generation and weight initialization.
//!
//! Everything stochastic in the workspace — dataset synthesis, weight
//! initialization, batch shuffling — flows through [`SeededRng`], so any
//! experiment is reproducible from a single `u64` seed printed by the
//! harness.

use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};

/// A small, fast, explicitly seeded random number generator.
///
/// # Examples
///
/// ```
/// use tcl_tensor::SeededRng;
///
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: SmallRng,
}

impl SeededRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// subsystem (data, init, shuffle) its own stream from one master seed.
    pub fn fork(&mut self, stream: u64) -> SeededRng {
        let base: u64 = self.inner.gen();
        SeededRng::new(
            base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(stream),
        )
    }

    /// The raw generator state (four xoshiro256++ words).
    ///
    /// Together with [`SeededRng::from_state`] this allows a stream to be
    /// persisted mid-run and continued bit-exactly — the checkpoint/resume
    /// subsystem saves the shuffle RNG this way.
    pub fn state(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Rebuilds a generator from a state captured by [`SeededRng::state`].
    ///
    /// The restored generator produces exactly the stream the captured one
    /// would have produced next.
    ///
    /// # Examples
    ///
    /// ```
    /// use tcl_tensor::SeededRng;
    ///
    /// let mut a = SeededRng::new(9);
    /// a.uniform(0.0, 1.0);
    /// let mut b = SeededRng::from_state(a.state());
    /// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    /// ```
    pub fn from_state(state: [u64; 4]) -> Self {
        SeededRng {
            inner: rand::rngs::SmallRng::from_state(state),
        }
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen::<f32>() * (hi - lo) + lo
    }

    /// Uniform integer in `[0, n)` over the full `u64` range.
    ///
    /// Unlike deriving an index from a `f32` uniform sample (24 bits of
    /// precision), this stays exact for counts beyond 2^24 — which is what
    /// Vitter's reservoir algorithm R needs once a stream grows large.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below_u64(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f32 = 1.0 - self.inner.gen::<f32>();
        let u2: f32 = self.inner.gen();
        // lint: allow(F2) the sampler is part of the frozen seeded-RNG
        // contract: the rng golden tests pin its exact output, so a libm
        // shift fails loudly in CI instead of silently skewing results
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal()
    }

    /// A uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.inner.gen_range(0..=i);
            p.swap(i, j);
        }
        p
    }

    /// Fills a fresh tensor with uniform samples in `[lo, hi)`.
    pub fn uniform_tensor<S: Into<crate::Shape>>(&mut self, shape: S, lo: f32, hi: f32) -> Tensor {
        let shape = shape.into();
        let len = shape.len();
        let data = (0..len).map(|_| self.uniform(lo, hi)).collect();
        // lint: allow(P1) data has exactly shape.len() elements by the map
        Tensor::from_vec(shape, data).expect("length matches by construction")
    }

    /// Fills a fresh tensor with normal samples.
    pub fn normal_tensor<S: Into<crate::Shape>>(
        &mut self,
        shape: S,
        mean: f32,
        std_dev: f32,
    ) -> Tensor {
        let shape = shape.into();
        let len = shape.len();
        let data = (0..len).map(|_| self.normal_with(mean, std_dev)).collect();
        // lint: allow(P1) data has exactly shape.len() elements by the map
        Tensor::from_vec(shape, data).expect("length matches by construction")
    }

    /// Kaiming (He) normal initialization for a layer with the given fan-in:
    /// `N(0, sqrt(2 / fan_in))`. This is the standard initialization for
    /// ReLU networks and what the paper's PyTorch training uses by default
    /// for convolutions.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in == 0`.
    pub fn kaiming_normal<S: Into<crate::Shape>>(&mut self, shape: S, fan_in: usize) -> Tensor {
        assert!(fan_in > 0, "fan-in must be nonzero");
        let std_dev = (2.0 / fan_in as f32).sqrt();
        self.normal_tensor(shape, 0.0, std_dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let va: Vec<f32> = (0..16).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..16).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn state_capture_resumes_bit_exactly() {
        let mut a = SeededRng::new(21);
        for _ in 0..37 {
            a.normal();
        }
        let state = a.state();
        let ahead: Vec<u32> = {
            let mut probe = SeededRng::from_state(state);
            (0..256)
                .map(|_| probe.uniform(0.0, 1.0).to_bits())
                .collect()
        };
        let live: Vec<u32> = (0..256).map(|_| a.uniform(0.0, 1.0).to_bits()).collect();
        assert_eq!(ahead, live);
    }

    #[test]
    fn below_u64_is_exact_past_f32_precision() {
        let mut rng = SeededRng::new(23);
        let n = (1u64 << 24) + 3;
        let mut seen_odd = false;
        for _ in 0..64 {
            let v = rng.below_u64(n);
            assert!(v < n);
            seen_odd |= v % 2 == 1;
        }
        // An f32-derived index above 2^24 can only land on even integers;
        // the u64 path must reach odd ones too.
        assert!(seen_odd);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = SeededRng::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
        assert!(samples.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = SeededRng::new(5);
        let p = rng.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_of_zero_and_one_elements() {
        let mut rng = SeededRng::new(5);
        assert!(rng.permutation(0).is_empty());
        assert_eq!(rng.permutation(1), vec![0]);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = SeededRng::new(13);
        let t = rng.kaiming_normal([10_000], 8);
        let mean = t.mean();
        let var: f32 = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        let expected = 2.0 / 8.0;
        assert!((var - expected).abs() < 0.02, "var {var} vs {expected}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = SeededRng::new(9);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let va: Vec<f32> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn tensor_fillers_have_right_shape() {
        let mut rng = SeededRng::new(17);
        assert_eq!(rng.uniform_tensor([2, 3], 0.0, 1.0).dims(), &[2, 3]);
        assert_eq!(rng.normal_tensor([4], 0.0, 1.0).dims(), &[4]);
    }
}
