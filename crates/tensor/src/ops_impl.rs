//! Arithmetic operator overloads for [`Tensor`].
//!
//! References are used as operands (`&a + &b`) so arithmetic never
//! implicitly consumes tensors. Shape mismatches panic — operators have no
//! error channel; use [`Tensor::add`]/[`Tensor::sub`]/[`Tensor::mul`] for
//! fallible elementwise arithmetic.

use crate::tensor::Tensor;
use std::ops::{Add, Mul, Neg, Sub};

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add(self, rhs: &Tensor) -> Tensor {
        // lint: allow(P1) operator traits have no error channel; the panic
        // is the documented contract, Tensor::add is the fallible form
        Tensor::add(self, rhs).expect("tensor shapes must match for +")
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn sub(self, rhs: &Tensor) -> Tensor {
        // lint: allow(P1) operator traits have no error channel; the panic
        // is the documented contract, Tensor::sub is the fallible form
        Tensor::sub(self, rhs).expect("tensor shapes must match for -")
    }
}

impl Mul<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn mul(self, rhs: &Tensor) -> Tensor {
        // lint: allow(P1) operator traits have no error channel; the panic
        // is the documented contract, Tensor::mul is the fallible form
        Tensor::mul(self, rhs).expect("tensor shapes must match for *")
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    /// Scalar scaling.
    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;

    /// Elementwise negation.
    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn operators_match_methods() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[10.0, 20.0]);
        assert_eq!(&a + &b, a.add(&b).unwrap());
        assert_eq!(&b - &a, b.sub(&a).unwrap());
        assert_eq!(&a * &b, a.mul(&b).unwrap());
        assert_eq!(&a * 3.0, a.scale(3.0));
        assert_eq!((-&a).data(), &[-1.0, -2.0]);
    }

    #[test]
    fn addition_is_commutative_and_associative() {
        let a = t(&[1.0, -2.0, 3.0]);
        let b = t(&[0.5, 0.25, -1.0]);
        let c = t(&[2.0, 2.0, 2.0]);
        assert_eq!(&a + &b, &b + &a);
        let left = &(&a + &b) + &c;
        let right = &a + &(&b + &c);
        assert!(left.max_abs_diff(&right).unwrap() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "shapes must match")]
    fn mismatched_addition_panics() {
        let _ = &t(&[1.0]) + &t(&[1.0, 2.0]);
    }
}
