//! # tcl-tensor
//!
//! Dense `f32` tensors and the numeric kernels behind the TCL ANN-to-SNN
//! reproduction (Ho & Chang, DAC 2021): row-major [`Tensor`]s, im2col
//! convolutions, pooling, softmax/reductions, deterministic RNG, and the
//! histogram machinery used to analyze activation distributions (the paper's
//! Figure 1 and the Rueckauer percentile baseline).
//!
//! The crate is deliberately minimal: no broadcasting DSL, no autograd tape —
//! just the contiguous-buffer kernels the `tcl-nn` layer library composes.
//! Every stochastic helper takes an explicit seed ([`SeededRng`]) so whole
//! experiments replay bit-identically.
//!
//! ## Example
//!
//! ```
//! use tcl_tensor::{ops, ops::ConvGeometry, SeededRng, Tensor};
//!
//! let mut rng = SeededRng::new(42);
//! let image = rng.uniform_tensor([1, 3, 8, 8], 0.0, 1.0);
//! let kernel = rng.kaiming_normal([4, 3, 3, 3], 3 * 3 * 3);
//! let geom = ConvGeometry::square(3, 1, 1)?;
//! let features = ops::conv2d(&image, &kernel, None, geom)?;
//! assert_eq!(features.dims(), &[1, 4, 8, 8]);
//! # Ok::<(), tcl_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod hist;
pub mod ops;
mod ops_impl;
pub mod par;
mod rng;
mod shape;
mod tensor;

/// Runtime SIMD dispatch (re-export of [`tcl_simd`]): [`simd::current`]
/// resolves the active [`simd::Level`], [`simd::with_level`] scopes an
/// override, and golden binaries pin via [`simd::pin`]. Downstream crates
/// reach the vector kernels through this module so `tcl-simd` stays the
/// single unsafe island.
pub use tcl_simd as simd;

pub use error::{Result, TensorError};
pub use hist::{Histogram, PercentileSketch};
pub use par::Parallelism;
pub use rng::SeededRng;
pub use shape::Shape;
pub use tensor::Tensor;
