//! Streaming histograms and exact percentiles over activation values.
//!
//! Two tools back the norm-factor analysis of the paper:
//!
//! * [`Histogram`] — fixed-bin histogram used to regenerate Figure 1
//!   (the log-scale distribution of post-ReLU activations) and to estimate
//!   percentiles in O(bins) memory while streaming an entire dataset.
//! * [`PercentileSketch`] — reservoir of raw values with exact percentile
//!   queries, used for the Rueckauer-style 99.9 % norm-factor when the value
//!   count is small enough to keep.

use serde::{Deserialize, Serialize};

/// A fixed-range, uniform-bin histogram of non-negative activation values.
///
/// Values above the range accumulate in an overflow bin so that total mass
/// is conserved (a property-tested invariant) and the true maximum is
/// tracked separately.
///
/// # Examples
///
/// ```
/// use tcl_tensor::Histogram;
///
/// let mut h = Histogram::new(10, 1.0);
/// h.record_all(&[0.05, 0.15, 0.25, 0.95, 2.0]);
/// assert_eq!(h.total_count(), 5);
/// assert_eq!(h.overflow_count(), 1);
/// assert_eq!(h.max_value(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    overflow: u64,
    upper: f32,
    max_value: f32,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins spanning `[0, upper)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `upper <= 0`.
    pub fn new(bins: usize, upper: f32) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(upper > 0.0, "histogram upper bound must be positive");
        Histogram {
            counts: vec![0; bins],
            overflow: 0,
            upper,
            max_value: 0.0,
            total: 0,
        }
    }

    /// Records one value. Negative values clamp into the first bin (post-ReLU
    /// activations are non-negative, so this is only a safety net).
    pub fn record(&mut self, value: f32) {
        let v = value.max(0.0);
        if v > self.max_value {
            self.max_value = v;
        }
        self.total += 1;
        if v >= self.upper {
            self.overflow += 1;
        } else {
            let bin = ((v / self.upper) * self.counts.len() as f32) as usize;
            let bin = bin.min(self.counts.len() - 1);
            self.counts[bin] += 1;
        }
    }

    /// Records every value in a slice.
    pub fn record_all(&mut self, values: &[f32]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Merges another histogram with identical geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bin counts or upper bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        assert_eq!(self.upper, other.upper, "upper bound mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.max_value = self.max_value.max(other.max_value);
    }

    /// Per-bin counts (excluding overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of values at or above the upper bound.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded values.
    pub fn total_count(&self) -> u64 {
        self.total
    }

    /// Largest value seen.
    pub fn max_value(&self) -> f32 {
        self.max_value
    }

    /// Upper bound of the binned range.
    pub fn upper(&self) -> f32 {
        self.upper
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f32 {
        self.upper / self.counts.len() as f32
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f32 {
        assert!(i < self.counts.len());
        (i as f32 + 0.5) * self.bin_width()
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// within the winning bin. If the quantile falls in the overflow region
    /// the recorded maximum is returned.
    ///
    /// Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f32) -> f32 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return 0.0;
        }
        let target = q as f64 * self.total as f64;
        let mut cum = 0f64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let frac = if c == 0 {
                    0.0
                } else {
                    ((target - cum) / c as f64).clamp(0.0, 1.0)
                };
                return (i as f32 + frac as f32) * self.bin_width();
            }
            cum = next;
        }
        self.max_value
    }

    /// Fraction of recorded values that lie at or above `threshold`.
    pub fn tail_fraction(&self, threshold: f32) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        let mut above = self.overflow;
        let start_bin = ((threshold / self.upper) * self.counts.len() as f32).ceil() as usize;
        for &c in self.counts.iter().skip(start_bin.min(self.counts.len())) {
            above += c;
        }
        above as f32 / self.total as f32
    }
}

/// An exact percentile estimator that retains every recorded value.
///
/// Suitable for calibration sets of up to a few million activations; the
/// conversion pipeline uses it for the Rueckauer 99.9 % baseline where exact
/// tail behaviour matters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PercentileSketch {
    values: Vec<f32>,
    sorted: bool,
}

impl PercentileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, value: f32) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Records every value in a slice.
    pub fn record_all(&mut self, values: &[f32]) {
        self.values.extend_from_slice(values);
        self.sorted = false;
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Exact `q`-quantile (nearest-rank with linear interpolation).
    ///
    /// Returns 0 for an empty sketch.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f32) -> f32 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            // total_cmp gives a deterministic order even if a NaN ever
            // sneaks in (it sorts to the top instead of aborting the run).
            self.values.sort_by(f32::total_cmp);
            self.sorted = true;
        }
        let pos = q as f64 * (self.values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = (pos - lo as f64) as f32;
        self.values[lo] * (1.0 - frac) + self.values[hi] * frac
    }

    /// Maximum recorded value (0 for an empty sketch).
    pub fn max(&self) -> f32 {
        self.values.iter().copied().fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_is_conserved() {
        let mut h = Histogram::new(8, 4.0);
        h.record_all(&[0.0, 0.5, 1.0, 3.9, 4.0, 100.0]);
        let binned: u64 = h.counts().iter().sum();
        assert_eq!(binned + h.overflow_count(), h.total_count());
        assert_eq!(h.total_count(), 6);
    }

    #[test]
    fn overflow_tracks_out_of_range_values() {
        let mut h = Histogram::new(4, 1.0);
        h.record_all(&[0.2, 1.5, 2.5]);
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.max_value(), 2.5);
    }

    #[test]
    fn quantile_on_uniform_data_is_linear() {
        let mut h = Histogram::new(100, 1.0);
        for i in 0..10_000 {
            h.record(i as f32 / 10_000.0);
        }
        for q in [0.1f32, 0.25, 0.5, 0.9, 0.999] {
            assert!(
                (h.quantile(q) - q).abs() < 0.02,
                "q={q} got {}",
                h.quantile(q)
            );
        }
    }

    #[test]
    fn quantile_in_overflow_region_returns_max() {
        let mut h = Histogram::new(4, 1.0);
        h.record_all(&[5.0, 6.0, 7.0]);
        assert_eq!(h.quantile(0.9), 7.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new(4, 1.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(4, 2.0);
        let mut b = Histogram::new(4, 2.0);
        a.record_all(&[0.1, 1.9]);
        b.record_all(&[0.1, 3.0]);
        a.merge(&b);
        assert_eq!(a.total_count(), 4);
        assert_eq!(a.overflow_count(), 1);
        assert_eq!(a.max_value(), 3.0);
    }

    #[test]
    fn tail_fraction_counts_upper_tail() {
        let mut h = Histogram::new(10, 1.0);
        for i in 0..100 {
            h.record(i as f32 / 100.0);
        }
        let f = h.tail_fraction(0.9);
        assert!((f - 0.1).abs() < 0.02, "{f}");
    }

    #[test]
    fn sketch_quantiles_are_exact() {
        let mut s = PercentileSketch::new();
        s.record_all(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.quantile(0.5), 3.0);
        // Interpolated between 2nd and 3rd order statistics.
        assert!((s.quantile(0.25) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sketch_handles_empty_and_single() {
        let mut s = PercentileSketch::new();
        assert_eq!(s.quantile(0.5), 0.0);
        s.record(7.0);
        assert_eq!(s.quantile(0.999), 7.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn bin_center_is_midpoint() {
        let h = Histogram::new(4, 2.0);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-6);
        assert!((h.bin_center(3) - 1.75).abs() < 1e-6);
    }
}
