//! Deterministic fork-join parallelism for compute kernels.
//!
//! The kernels in [`crate::ops`] split work across threads **only along
//! independent output items** (matmul output rows, convolution batch items,
//! pooling planes). Every item is computed by exactly the same scalar code
//! regardless of which thread runs it or how items are grouped, so results
//! are bitwise identical for every thread count — `TCL_THREADS=1` and
//! `TCL_THREADS=64` produce the same floats. No parallel reductions are
//! performed here; kernels that need a reduction accumulate per-item partials
//! and fold them in item order on one thread.
//!
//! Thread-count resolution order:
//!
//! 1. an explicit [`Parallelism`] passed to a `*_with` kernel variant;
//! 2. the `TCL_THREADS` environment variable (positive integer), read once;
//! 3. [`std::thread::available_parallelism`].
//!
//! Workers are plain scoped threads ([`std::thread::scope`]); there is no
//! pool, so the helpers only fan out when each worker receives enough items
//! to amortize spawn cost (the `min_items_per_worker` arguments). Nested
//! fan-out is suppressed automatically: code running inside a worker sees a
//! serial [`Parallelism`] (see [`with_serial`]), so e.g. a matmul inside a
//! parallel-over-batch convolution does not oversubscribe the machine.

use std::cell::Cell;
use std::sync::OnceLock;
use tcl_telemetry as telemetry;

/// A thread-count budget for the compute kernels.
///
/// `Parallelism` is a plain value: passing `Parallelism::serial()` to a
/// `*_with` kernel forces single-threaded execution, and any other count
/// caps the fan-out width. The result of a kernel never depends on the
/// budget — only its wall-clock time does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Single-threaded execution.
    pub fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// A budget of at most `threads` worker threads (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
        }
    }

    /// Resolves the budget from the environment: `TCL_THREADS` if set to a
    /// positive integer, otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        match parse_thread_var(std::env::var("TCL_THREADS").ok().as_deref()) {
            Some(t) => Parallelism::new(t),
            None => Parallelism::new(
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            ),
        }
    }

    /// The configured thread cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of workers to actually use for `items` independent items,
    /// requiring at least `min_items_per_worker` items each (so tiny
    /// problems stay serial). Returns 1 inside a [`with_serial`] scope.
    pub fn workers_for(&self, items: usize, min_items_per_worker: usize) -> usize {
        if in_serial_scope() {
            return 1;
        }
        self.threads.min(items / min_items_per_worker.max(1)).max(1)
    }
}

impl Default for Parallelism {
    /// The process-wide budget (see [`current`]).
    fn default() -> Self {
        current()
    }
}

/// Default floor on per-worker work (roughly multiply-add counts) before a
/// kernel fans out. Spawning a scoped thread costs tens of microseconds, so
/// each worker needs at least this much arithmetic to come out ahead.
///
/// 2¹⁶ multiply-adds is ≈ 30 µs of scalar arithmetic — comfortably above
/// spawn cost. The previous floor of 2¹⁸ was so conservative that a
/// CNN-6 SNN step at batch 4 (≈ 55 k mult-adds per batch item) computed
/// `min_items = 4` and collapsed to one worker; batch-scale SNN inference
/// never engaged the thread budget it was handed.
pub const MIN_WORK_PER_WORKER: usize = 1 << 16;

/// Converts a per-item cost estimate into the `min_items_per_worker`
/// argument of the `par_*` helpers, using [`MIN_WORK_PER_WORKER`].
pub fn min_items_per_worker(item_cost: usize) -> usize {
    (MIN_WORK_PER_WORKER / item_cost.max(1)).max(1)
}

fn parse_thread_var(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
}

/// The process-wide default budget, resolved once from the environment.
pub fn current() -> Parallelism {
    static CURRENT: OnceLock<Parallelism> = OnceLock::new();
    *CURRENT.get_or_init(Parallelism::from_env)
}

thread_local! {
    static SERIAL_SCOPE: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with all kernel fan-out suppressed on this thread.
///
/// Used by coarse-grained parallel drivers (e.g. the SNN evaluator's
/// per-batch workers) so the fine-grained kernels they call stay serial
/// instead of oversubscribing. The helpers in this module apply it to their
/// own workers automatically.
pub fn with_serial<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            SERIAL_SCOPE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(SERIAL_SCOPE.with(|c| c.replace(true)));
    f()
}

/// Whether kernel fan-out is suppressed on this thread.
pub fn in_serial_scope() -> bool {
    SERIAL_SCOPE.with(Cell::get)
}

/// Runs one fan-out worker under telemetry instrumentation: a `par.worker`
/// span linked to the spawning kernel's span (`parent` is captured on the
/// spawning thread; pass `None` for the chunk that runs inline, whose span
/// stack already carries the parent) and a `par.worker_ms` wall-time
/// histogram sample for imbalance analysis. With `TCL_TRACE`/`TCL_METRICS`
/// unset this is two relaxed flag loads per *worker* — never per item.
fn instrumented_worker<F: FnOnce()>(parent: Option<u64>, first_item: usize, items: usize, f: F) {
    telemetry::propagate_parent(parent);
    let _span = telemetry::span_with("par.worker", || {
        vec![("first", first_item as f64), ("items", items as f64)]
    });
    if telemetry::metrics_enabled() {
        // lint: allow(D1) wall time feeds only the gated par.worker_ms
        // imbalance histogram; it never reaches a computed value
        let start = std::time::Instant::now();
        f();
        telemetry::hist_record(
            "par.worker_ms",
            start.elapsed().as_secs_f64() * 1e3,
            50.0,
            25,
        );
    } else {
        f();
    }
}

/// Computes per-worker contiguous item counts: `items` split across `workers`
/// in runs that are multiples of `granularity` (except possibly the last).
fn run_len(items: usize, granularity: usize, workers: usize) -> usize {
    let gran = granularity.max(1);
    let granules = items.div_ceil(gran);
    granules.div_ceil(workers) * gran
}

/// Splits `data` — `items` of `item_len` elements each — into contiguous
/// per-worker runs and calls `f(first_item_index, run)` on each run, in
/// parallel.
///
/// Runs are multiples of `granularity` items (except the last), so callers
/// tiling items in groups (e.g. matmul row tiles) see aligned boundaries.
/// `f` must compute each item independently of its neighbours; under that
/// contract the result is bitwise identical to the serial call `f(0, data)`.
pub fn par_items_mut<T, F>(
    par: Parallelism,
    data: &mut [T],
    item_len: usize,
    granularity: usize,
    min_items_per_worker: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let item_len = item_len.max(1);
    debug_assert_eq!(data.len() % item_len, 0, "partial trailing item");
    let items = data.len() / item_len;
    let workers = par.workers_for(items, min_items_per_worker);
    if workers <= 1 {
        f(0, data);
        return;
    }
    let per_worker = run_len(items, granularity, workers);
    let parent = telemetry::current_span_id();
    // Workers are fresh threads with no thread-local state: re-apply the
    // caller's SIMD level so kernels inside `f` dispatch identically on
    // every worker (the serial==parallel bitwise contract, per level).
    let level = tcl_simd::current();
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut first_item = 0usize;
        while !rest.is_empty() {
            let take = per_worker.min(rest.len() / item_len);
            let (run, tail) = rest.split_at_mut(take * item_len);
            rest = tail;
            let start = first_item;
            first_item += take;
            if rest.is_empty() {
                // Run the final chunk on the current thread.
                instrumented_worker(None, start, take, || with_serial(|| f(start, run)));
            } else {
                scope.spawn(move || {
                    tcl_simd::with_level(level, || {
                        instrumented_worker(parent, start, take, || with_serial(|| f(start, run)))
                    })
                });
            }
        }
    });
}

/// Like [`par_items_mut`], but splits two slices in lockstep: item `i`
/// consists of `a_item` elements of `a` and `b_item` elements of `b`.
/// `f(first_item_index, a_run, b_run)` receives matching runs.
#[allow(clippy::too_many_arguments)] // mirrors par_items_mut with a second slice
pub fn par_items_mut2<T, U, F>(
    par: Parallelism,
    a: &mut [T],
    a_item: usize,
    b: &mut [U],
    b_item: usize,
    granularity: usize,
    min_items_per_worker: usize,
    f: F,
) where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    let (a_item, b_item) = (a_item.max(1), b_item.max(1));
    debug_assert_eq!(a.len() % a_item, 0, "partial trailing item in a");
    debug_assert_eq!(b.len() % b_item, 0, "partial trailing item in b");
    debug_assert_eq!(a.len() / a_item, b.len() / b_item, "item count mismatch");
    let items = a.len() / a_item;
    let workers = par.workers_for(items, min_items_per_worker);
    if workers <= 1 {
        f(0, a, b);
        return;
    }
    let per_worker = run_len(items, granularity, workers);
    let parent = telemetry::current_span_id();
    // See par_items_mut: workers re-apply the caller's SIMD level.
    let level = tcl_simd::current();
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest_a = a;
        let mut rest_b = b;
        let mut first_item = 0usize;
        while !rest_a.is_empty() {
            let take = per_worker.min(rest_a.len() / a_item);
            let (run_a, tail_a) = rest_a.split_at_mut(take * a_item);
            let (run_b, tail_b) = rest_b.split_at_mut(take * b_item);
            rest_a = tail_a;
            rest_b = tail_b;
            let start = first_item;
            first_item += take;
            if rest_a.is_empty() {
                instrumented_worker(None, start, take, || with_serial(|| f(start, run_a, run_b)));
            } else {
                scope.spawn(move || {
                    tcl_simd::with_level(level, || {
                        instrumented_worker(parent, start, take, || {
                            with_serial(|| f(start, run_a, run_b))
                        })
                    })
                });
            }
        }
    });
}

/// Evaluates `f(0..items)` in parallel and returns the results in index
/// order. Workers receive contiguous index ranges; fold order is therefore
/// independent of the thread count.
pub fn par_map<R, F>(par: Parallelism, items: usize, min_items_per_worker: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items);
    slots.resize_with(items, || None);
    par_items_mut(par, &mut slots, 1, 1, min_items_per_worker, |first, run| {
        for (offset, slot) in run.iter_mut().enumerate() {
            *slot = Some(f(first + offset));
        }
    });
    slots
        .into_iter()
        // lint: allow(P1) par_items_mut visits every slot exactly once
        .map(|s| s.expect("par_map: every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn thread_var_parsing() {
        assert_eq!(parse_thread_var(None), None);
        assert_eq!(parse_thread_var(Some("")), None);
        assert_eq!(parse_thread_var(Some("0")), None);
        assert_eq!(parse_thread_var(Some("-2")), None);
        assert_eq!(parse_thread_var(Some("junk")), None);
        assert_eq!(parse_thread_var(Some("8")), Some(8));
        assert_eq!(parse_thread_var(Some(" 3 ")), Some(3));
    }

    #[test]
    fn workers_respect_min_items() {
        let par = Parallelism::new(4);
        assert_eq!(par.workers_for(3, 8), 1);
        assert_eq!(par.workers_for(16, 8), 2);
        assert_eq!(par.workers_for(1000, 8), 4);
        assert_eq!(par.workers_for(0, 8), 1);
        assert_eq!(Parallelism::serial().workers_for(1000, 1), 1);
    }

    #[test]
    fn par_items_mut_touches_every_item_once() {
        for &threads in &[1usize, 2, 3, 5] {
            let mut data = vec![0u32; 103 * 3];
            par_items_mut(
                Parallelism::new(threads),
                &mut data,
                3,
                4,
                1,
                |first, run| {
                    for (i, item) in run.chunks_exact_mut(3).enumerate() {
                        for v in item.iter_mut() {
                            *v += (first + i) as u32 + 1;
                        }
                    }
                },
            );
            let expected: Vec<u32> = (0..103u32).flat_map(|i| [i + 1; 3]).collect();
            assert_eq!(data, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_items_mut2_keeps_slices_in_lockstep() {
        let mut a = vec![0usize; 37 * 2];
        let mut b = vec![0usize; 37 * 5];
        par_items_mut2(
            Parallelism::new(3),
            &mut a,
            2,
            &mut b,
            5,
            1,
            1,
            |first, ra, rb| {
                for (i, item) in ra.chunks_exact_mut(2).enumerate() {
                    item.fill(first + i);
                }
                for (i, item) in rb.chunks_exact_mut(5).enumerate() {
                    item.fill(first + i);
                }
            },
        );
        for i in 0..37 {
            assert!(a[i * 2..(i + 1) * 2].iter().all(|&v| v == i));
            assert!(b[i * 5..(i + 1) * 5].iter().all(|&v| v == i));
        }
    }

    #[test]
    fn par_map_preserves_order() {
        for &threads in &[1usize, 2, 7] {
            let out = par_map(Parallelism::new(threads), 50, 1, |i| i * i);
            assert_eq!(out, (0..50).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn workers_run_in_serial_scope() {
        let nested_workers = AtomicUsize::new(0);
        par_items_mut(Parallelism::new(4), &mut [0u8; 16], 1, 1, 1, |_, _| {
            let inner = Parallelism::new(4).workers_for(1000, 1);
            // ordering: Relaxed — max-accumulator across workers; the scope
            // join publishes it before the load below.
            nested_workers.fetch_max(inner, Ordering::Relaxed);
        });
        // ordering: Relaxed — read after the thread::scope join, which
        // already synchronizes all worker writes.
        assert_eq!(nested_workers.load(Ordering::Relaxed), 1);
        assert!(!in_serial_scope());
    }

    #[test]
    fn batch_scale_snn_steps_engage_workers() {
        // Regression for the parallel SNN-step no-op: a CNN-6 step at
        // batch 4 costs ≈ 55k mult-adds per batch item. Under the old
        // 2^18 floor, min_items_per_worker(55_296) was 4 → 4 items / 4 =
        // exactly 1 worker, so batch inference silently ran serial. The
        // 2^16 floor must hand a 4-thread budget at least 2 workers.
        let per_item_cost = 55_296;
        let min_items = min_items_per_worker(per_item_cost);
        assert!(
            Parallelism::new(4).workers_for(4, min_items) >= 2,
            "batch-4 CNN-scale items must fan out (min_items={min_items})"
        );
        // Tiny items must still stay serial: spawn cost dominates.
        assert_eq!(
            Parallelism::new(4).workers_for(4, min_items_per_worker(64)),
            1
        );
    }

    #[test]
    fn workers_inherit_callers_simd_level() {
        // Pick a level that cannot be the detected default, so seeing it
        // on a worker proves propagation rather than coincidence.
        let override_level = tcl_simd::Level::Scalar;
        assert_ne!(tcl_simd::detect_widest(), override_level);
        let mismatches = AtomicUsize::new(0);
        tcl_simd::with_level(override_level, || {
            par_items_mut(Parallelism::new(4), &mut [0u8; 16], 1, 1, 1, |_, _| {
                if tcl_simd::current() != override_level {
                    // ordering: Relaxed — counter only; the scope join
                    // publishes it before the load below.
                    mismatches.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        // ordering: Relaxed — read after the thread::scope join.
        assert_eq!(mismatches.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn with_serial_restores_on_unwind() {
        let res = std::panic::catch_unwind(|| with_serial(|| panic!("boom")));
        assert!(res.is_err());
        assert!(!in_serial_scope());
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let mut data: Vec<f32> = Vec::new();
        par_items_mut(Parallelism::new(4), &mut data, 4, 1, 1, |_, run| {
            assert!(run.is_empty());
        });
        let out: Vec<u8> = par_map(Parallelism::new(4), 0, 1, |_| 0);
        assert!(out.is_empty());
    }
}
