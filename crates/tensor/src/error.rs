//! Error types for tensor construction and kernel invocation.

use std::error::Error;
use std::fmt;

/// Error raised when tensor shapes or arguments are inconsistent.
///
/// Every fallible public function in this crate returns
/// `Result<_, TensorError>`; panicking variants are reserved for internal
/// invariants that cannot be triggered through the public API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the provided
    /// data buffer length.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// A tensor has the wrong rank for the requested operation.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor that was provided.
        actual: usize,
    },
    /// Inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// Columns of the left matrix.
        left_cols: usize,
        /// Rows of the right matrix.
        right_rows: usize,
    },
    /// A convolution/pooling window does not fit the padded input.
    WindowDoesNotFit {
        /// Human-readable description of the offending geometry.
        detail: String,
    },
    /// An argument is outside its valid domain (e.g. `stride == 0`).
    InvalidArgument {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left:?} and {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, found rank {actual}")
            }
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimensions disagree: left has {left_cols} columns, right has {right_rows} rows"
            ),
            TensorError::WindowDoesNotFit { detail } => {
                write!(f, "window does not fit input: {detail}")
            }
            TensorError::InvalidArgument { detail } => {
                write!(f, "invalid argument: {detail}")
            }
        }
    }
}

impl Error for TensorError {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = TensorError::LengthMismatch {
            expected: 12,
            actual: 10,
        };
        let text = err.to_string();
        assert!(text.contains("10"));
        assert!(text.contains("12"));
        assert!(text.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn shape_mismatch_reports_both_shapes() {
        let err = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![4, 5],
        };
        let text = err.to_string();
        assert!(text.contains("[2, 3]"));
        assert!(text.contains("[4, 5]"));
    }

    #[test]
    fn errors_implement_std_error() {
        let err: Box<dyn Error> = Box::new(TensorError::InvalidArgument {
            detail: "stride must be nonzero".into(),
        });
        assert!(err.to_string().contains("stride"));
    }
}
