//! The telemetry layer's two contracts with the kernels:
//!
//! 1. **Disabled path**: with tracing and metrics off, instrumented kernels
//!    emit zero events and produce bitwise-identical results to an
//!    instrumented run — telemetry must never perturb numerics.
//! 2. **Span nesting**: when tracing is on, `par.worker` spans nest under
//!    the kernel span that spawned them, across `std::thread::scope`
//!    boundaries (thread-locals do not propagate there by themselves).

use tcl_telemetry::test_support::{with_captured, with_disabled};
use tcl_tensor::ops::matmul_into_with;
use tcl_tensor::{Parallelism, SeededRng};

fn random_vec(rng: &mut SeededRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

/// Extracts a `"key":<integer>` field from one JSONL line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// `(id, parent)` of every span line with the given name.
fn spans_named(lines: &[String], name: &str) -> Vec<(u64, Option<u64>)> {
    let tag = format!("\"name\":\"{name}\"");
    lines
        .iter()
        .filter(|l| l.contains("\"type\":\"span\"") && l.contains(&tag))
        .map(|l| {
            (
                field_u64(l, "id").expect("span line has an id"),
                field_u64(l, "parent"),
            )
        })
        .collect()
}

// Big enough that the matmul crosses the parallel-dispatch volume threshold
// and genuinely fans out over multiple workers: the row split hands each
// worker at least PAR_MIN_VOLUME/(k·n) = 64 rows, so 192 rows make 3.
const M: usize = 192;
const K: usize = 64;
const N: usize = 64;

#[test]
fn disabled_telemetry_is_silent_and_bitwise_identical() {
    let mut rng = SeededRng::new(42);
    let a = random_vec(&mut rng, M * K);
    let b = random_vec(&mut rng, K * N);

    let mut instrumented = vec![0.0f32; M * N];
    let ((), lines) = with_captured(|| {
        matmul_into_with(Parallelism::new(4), &a, &b, &mut instrumented, M, K, N);
    });
    assert!(!lines.is_empty(), "tracing enabled but nothing was emitted");

    let mut plain = vec![0.0f32; M * N];
    let ((), events) = with_disabled(|| {
        matmul_into_with(Parallelism::new(4), &a, &b, &mut plain, M, K, N);
    });
    assert_eq!(events, 0, "disabled path emitted telemetry events");
    assert_eq!(instrumented, plain, "telemetry changed kernel numerics");
}

#[test]
fn worker_spans_nest_under_the_kernel_span() {
    let mut rng = SeededRng::new(7);
    let a = random_vec(&mut rng, M * K);
    let b = random_vec(&mut rng, K * N);
    let mut out = vec![0.0f32; M * N];

    let ((), lines) = with_captured(|| {
        let _outer = tcl_telemetry::span("test.outer");
        matmul_into_with(Parallelism::new(4), &a, &b, &mut out, M, K, N);
    });
    for line in &lines {
        tcl_telemetry::json::validate_line(line)
            .unwrap_or_else(|e| panic!("invalid JSONL {line:?}: {e}"));
    }

    let outer = spans_named(&lines, "test.outer");
    assert_eq!(outer.len(), 1, "exactly one outer span");
    let matmul = spans_named(&lines, "matmul");
    assert_eq!(matmul.len(), 1, "exactly one matmul span");
    assert_eq!(
        matmul[0].1,
        Some(outer[0].0),
        "matmul span must nest under the enclosing span"
    );

    let workers = spans_named(&lines, "par.worker");
    assert!(
        workers.len() >= 2,
        "expected a multi-worker fan-out, got {} worker spans",
        workers.len()
    );
    for (id, parent) in &workers {
        assert_eq!(
            *parent,
            Some(matmul[0].0),
            "worker span {id} not parented to the matmul span"
        );
    }
}
