//! Property-based tests for the numeric kernels.
//!
//! These check the algebraic identities the conversion pipeline relies on:
//! im2col convolution must agree with the direct definition, col2im must be
//! the exact adjoint of im2col, matmul must distribute over addition, and
//! histogram mass must be conserved.

use proptest::prelude::*;
use tcl_tensor::ops::{self, ConvGeometry};
use tcl_tensor::{Histogram, PercentileSketch, SeededRng, Tensor};

fn small_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut rng = SeededRng::new(seed);
    rng.uniform_tensor(shape, -2.0, 2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv2d_matches_naive(
        n in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        h in 3usize..8,
        w in 3usize..8,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1_000,
    ) {
        let geom = ConvGeometry::square(3, stride, pad).unwrap();
        prop_assume!(geom.output_hw(h, w).is_ok());
        let x = small_tensor(vec![n, cin, h, w], seed);
        let wt = small_tensor(vec![cout, cin, 3, 3], seed.wrapping_add(1));
        let b = small_tensor(vec![cout], seed.wrapping_add(2));
        let fast = ops::conv2d(&x, &wt, Some(&b), geom).unwrap();
        let slow = ops::conv2d_naive(&x, &wt, Some(&b), geom).unwrap();
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..6,
        k in 1usize..6,
        nn in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let a = small_tensor(vec![m, k], seed);
        let b = small_tensor(vec![k, nn], seed.wrapping_add(1));
        let c = small_tensor(vec![k, nn], seed.wrapping_add(2));
        let lhs = ops::matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = ops::matmul(&a, &b).unwrap().add(&ops::matmul(&a, &c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
    }

    #[test]
    fn matmul_agrees_with_transposed_variants(
        m in 1usize..5,
        k in 1usize..5,
        nn in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let a = small_tensor(vec![m, k], seed);
        let b = small_tensor(vec![k, nn], seed.wrapping_add(9));
        let at = ops::transpose(&a).unwrap();
        let bt = ops::transpose(&b).unwrap();
        let base = ops::matmul(&a, &b).unwrap();
        let via_tn = ops::matmul_tn(&at, &b).unwrap();
        let via_nt = ops::matmul_nt(&a, &bt).unwrap();
        prop_assert!(base.max_abs_diff(&via_tn).unwrap() < 1e-4);
        prop_assert!(base.max_abs_diff(&via_nt).unwrap() < 1e-4);
    }

    #[test]
    fn avg_pool_preserves_mean_when_tiling_exactly(
        n in 1usize..3,
        c in 1usize..4,
        tiles in 1usize..4,
        k in 1usize..4,
        seed in 0u64..1_000,
    ) {
        // When windows tile the input exactly (stride == kernel, size divisible),
        // average pooling preserves the global mean.
        let hw = tiles * k;
        let x = small_tensor(vec![n, c, hw, hw], seed);
        let y = ops::avg_pool2d(&x, k, k).unwrap();
        prop_assert!((x.mean() - y.mean()).abs() < 1e-4);
    }

    #[test]
    fn max_pool_dominates_avg_pool(
        n in 1usize..3,
        c in 1usize..3,
        tiles in 1usize..4,
        k in 2usize..4,
        seed in 0u64..1_000,
    ) {
        let hw = tiles * k;
        let x = small_tensor(vec![n, c, hw, hw], seed);
        let avg = ops::avg_pool2d(&x, k, k).unwrap();
        let max = ops::max_pool2d(&x, k, k).unwrap().output;
        for (a, m) in avg.data().iter().zip(max.data()) {
            prop_assert!(m + 1e-6 >= *a);
        }
    }

    #[test]
    fn softmax_rows_are_probability_vectors(
        rows in 1usize..6,
        cols in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let x = small_tensor(vec![rows, cols], seed).scale(10.0);
        let s = ops::softmax_rows(&x).unwrap();
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        for r in 0..rows {
            let sum: f32 = s.data()[r * cols..(r + 1) * cols].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn histogram_mass_conservation(values in prop::collection::vec(0.0f32..10.0, 0..200)) {
        let mut h = Histogram::new(16, 4.0);
        h.record_all(&values);
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.overflow_count(), values.len() as u64);
    }

    #[test]
    fn histogram_quantiles_are_monotone(values in prop::collection::vec(0.0f32..5.0, 1..200)) {
        let mut h = Histogram::new(32, 5.0);
        h.record_all(&values);
        let mut prev = 0.0f32;
        for i in 0..=10 {
            let q = h.quantile(i as f32 / 10.0);
            prop_assert!(q + 1e-6 >= prev, "quantiles must be monotone");
            prev = q;
        }
    }

    #[test]
    fn sketch_quantile_brackets_data(values in prop::collection::vec(0.0f32..100.0, 1..100)) {
        let mut s = PercentileSketch::new();
        s.record_all(&values);
        let lo = s.quantile(0.0);
        let hi = s.quantile(1.0);
        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        let max = values.iter().copied().fold(0.0f32, f32::max);
        prop_assert!((lo - min).abs() < 1e-5);
        prop_assert!((hi - max).abs() < 1e-5);
    }

    #[test]
    fn global_avg_pool_equals_per_channel_mean(
        n in 1usize..3,
        c in 1usize..4,
        h in 1usize..5,
        w in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let x = small_tensor(vec![n, c, h, w], seed);
        let y = ops::global_avg_pool(&x).unwrap();
        for ni in 0..n {
            for ci in 0..c {
                let mut acc = 0.0;
                for hi in 0..h {
                    for wi in 0..w {
                        acc += x.at4(ni, ci, hi, wi);
                    }
                }
                let mean = acc / (h * w) as f32;
                prop_assert!((y.at4(ni, ci, 0, 0) - mean).abs() < 1e-4);
            }
        }
    }
}
