//! Per-ISA equivalence properties for the SIMD-dispatched kernels.
//!
//! Every kernel must produce the same mathematics at every dispatch level;
//! these properties quantify "same" per level against the scalar reference:
//!
//! * `Wide` (portable 8-lane, unfused) — **bitwise identical** to `Scalar`
//!   for every kernel. This is the load-bearing property: it proves the
//!   vector code reorders nothing and fuses nothing.
//! * `Avx2` (fused multiply-add) — dot-product kernels (matmul, im2col
//!   conv) agree within an accumulated-rounding bound proportional to the
//!   reduction length `k`; elementwise kernels must still be bitwise.
//!
//! Golden suites pin `Scalar` (see `tests/golden_regression.rs`); these
//! properties are what justify shipping the wider levels by default.

use proptest::prelude::*;
use tcl_tensor::ops::{conv2d, matmul_into_with, ConvGeometry};
use tcl_tensor::{simd, Parallelism, SeededRng, Tensor};

fn random_vec(rng: &mut SeededRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

/// Absolute agreement bound for a fused-vs-unfused reduction of length `k`
/// over values in `[-1, 1)`: the fused path skips one product rounding per
/// step and the two running sums may round apart by a few low bits each
/// step, all scaled by the partial-sum magnitude (≤ `k`).
fn fma_bound(k: usize) -> f32 {
    k as f32 * 1e-5
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked matmul: `Wide` replays `Scalar` bitwise; `Avx2` stays within
    /// the accumulated-rounding bound. Shapes cover full tiles and both
    /// ragged edges.
    #[test]
    fn matmul_levels_agree_with_scalar(
        m in 1usize..40,
        k in 1usize..96,
        n in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);
        let mut reference = vec![0.0f32; m * n];
        simd::with_level(simd::Level::Scalar, || {
            matmul_into_with(Parallelism::serial(), &a, &b, &mut reference, m, k, n);
        });
        for level in simd::Level::available() {
            let mut out = vec![0.0f32; m * n];
            simd::with_level(level, || {
                matmul_into_with(Parallelism::serial(), &a, &b, &mut out, m, k, n);
            });
            if level == simd::Level::Avx2 {
                for (g, w) in out.iter().zip(&reference) {
                    prop_assert!(
                        (g - w).abs() <= fma_bound(k),
                        "avx2 m={} k={} n={}: {} vs {}", m, k, n, g, w
                    );
                }
            } else {
                prop_assert_eq!(
                    &out, &reference,
                    "{} m={} k={} n={}", level.name(), m, k, n
                );
            }
        }
    }

    /// im2col convolution inherits the matmul guarantee: bitwise at the
    /// unfused levels, rounding-bounded at AVX2 with `k = in_c·kh·kw`.
    #[test]
    fn conv2d_levels_agree_with_scalar(
        batch in 1usize..3,
        in_c in 1usize..4,
        out_c in 1usize..6,
        hw in 5usize..12,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::from_vec(
            [batch, in_c, hw, hw],
            random_vec(&mut rng, batch * in_c * hw * hw),
        ).unwrap();
        let weight = Tensor::from_vec(
            [out_c, in_c, 3, 3],
            random_vec(&mut rng, out_c * in_c * 9),
        ).unwrap();
        let geom = ConvGeometry::square(3, 1, 1).unwrap();
        let reference =
            simd::with_level(simd::Level::Scalar, || conv2d(&x, &weight, None, geom)).unwrap();
        for level in simd::Level::available() {
            let out = simd::with_level(level, || conv2d(&x, &weight, None, geom)).unwrap();
            if level == simd::Level::Avx2 {
                let k = in_c * 9;
                for (g, w) in out.data().iter().zip(reference.data()) {
                    prop_assert!(
                        (g - w).abs() <= fma_bound(k),
                        "avx2 conv b={} c={}->{} hw={}: {} vs {}", batch, in_c, out_c, hw, g, w
                    );
                }
            } else {
                prop_assert_eq!(
                    out.data(), reference.data(),
                    "{} conv b={} c={}->{} hw={}", level.name(), batch, in_c, out_c, hw
                );
            }
        }
    }

    /// The sparse zero-skip kernel dispatches `axpy` at the process level;
    /// against the scalar sparse kernel the same per-level contract holds
    /// (one fused step per surviving row element at AVX2).
    #[test]
    fn sparse_matmul_levels_agree_with_scalar(
        m in 1usize..12,
        k in 8usize..64,
        n in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SeededRng::new(seed);
        // Spike-raster-like left operand: mostly zeros.
        let a: Vec<f32> = (0..m * k)
            .map(|_| if rng.uniform(0.0, 1.0) < 0.2 { 1.0 } else { 0.0 })
            .collect();
        let b = random_vec(&mut rng, k * n);
        let mut reference = vec![0.0f32; m * n];
        simd::with_level(simd::Level::Scalar, || {
            tcl_tensor::ops::matmul_into_sparse(&a, &b, &mut reference, m, k, n);
        });
        for level in simd::Level::available() {
            let mut out = vec![0.0f32; m * n];
            simd::with_level(level, || {
                tcl_tensor::ops::matmul_into_sparse(&a, &b, &mut out, m, k, n);
            });
            if level == simd::Level::Avx2 {
                for (g, w) in out.iter().zip(&reference) {
                    prop_assert!(
                        (g - w).abs() <= fma_bound(k),
                        "avx2 sparse m={} k={} n={}: {} vs {}", m, k, n, g, w
                    );
                }
            } else {
                prop_assert_eq!(
                    &out, &reference,
                    "{} sparse m={} k={} n={}", level.name(), m, k, n
                );
            }
        }
    }
}
