//! Property tests for the parallel-execution determinism contract.
//!
//! The kernels promise that the thread budget never changes results: for any
//! shape, any thread count, and any fixed SIMD dispatch level, the parallel
//! output is **bitwise identical** to the serial one (see `tcl_tensor::par`).
//! These properties drive the explicit `Parallelism` API with randomized
//! shapes, data, and thread counts, and compare against the serial path with
//! exact `==` — no tolerance anywhere. Cross-*kernel* comparisons (blocked
//! vs naive) are bitwise only at the unfused levels (`scalar`/`wide`); the
//! AVX2 level's fused tiles are covered with an accumulated-rounding bound
//! here and in `proptest_simd.rs`.

use proptest::prelude::*;
use tcl_tensor::ops::{
    avg_pool2d, conv2d, matmul_into_naive, matmul_into_with, matmul_nt_with, matmul_tn_with,
    max_pool2d, transpose_into, ConvGeometry,
};
use tcl_tensor::{par, simd, Parallelism, SeededRng, Tensor};

/// Uniform values in `[-1, 1)`, seeded so failures replay exactly.
fn random_vec(rng: &mut SeededRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

/// Thread budgets exercised against the serial baseline. 2 splits once, 3
/// leaves a ragged tail run, and the last budget exceeds any worker count the
/// row-split will actually use, exercising the `workers.max(1)` clamps.
const THREADS: [usize; 3] = [2, 3, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At every available SIMD level: the unfused levels match the naive
    /// reference bitwise (the AVX2 level within an accumulated-rounding
    /// bound), and every thread budget matches that level's serial result
    /// bitwise. Shapes are drawn large enough that multi-worker row splits
    /// genuinely occur (`m·k·n` up to ~1.5M multiply-adds).
    #[test]
    fn matmul_is_bitwise_thread_count_invariant(
        m in 16usize..160,
        k in 48usize..96,
        n in 48usize..96,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);
        let mut naive = vec![0.0f32; m * n];
        matmul_into_naive(&a, &b, &mut naive, m, k, n);
        for level in simd::Level::available() {
            simd::with_level(level, || -> Result<(), TestCaseError> {
                let mut serial = vec![0.0f32; m * n];
                matmul_into_with(Parallelism::serial(), &a, &b, &mut serial, m, k, n);
                if level == simd::Level::Avx2 {
                    for (g, w) in serial.iter().zip(&naive) {
                        prop_assert!(
                            (g - w).abs() <= k as f32 * 1e-5,
                            "avx2 blocked vs naive, m={} k={} n={}: {} vs {}", m, k, n, g, w
                        );
                    }
                } else {
                    prop_assert_eq!(
                        &naive, &serial,
                        "{} blocked vs naive, m={} k={} n={}", level.name(), m, k, n
                    );
                }
                for threads in THREADS {
                    let mut out = vec![0.0f32; m * n];
                    matmul_into_with(Parallelism::new(threads), &a, &b, &mut out, m, k, n);
                    prop_assert_eq!(
                        &serial, &out,
                        "{} threads={} m={} k={} n={}", level.name(), threads, m, k, n
                    );
                }
                Ok(())
            })?;
        }
    }

    /// The transposed-operand wrappers inherit the same guarantee.
    #[test]
    fn transposed_matmul_wrappers_are_thread_count_invariant(
        m in 8usize..64,
        k in 8usize..64,
        n in 8usize..64,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SeededRng::new(seed);
        // matmul_tn computes aᵀ·b from a [k, m]; matmul_nt computes a·bᵀ
        // from b [n, k].
        let a_t = Tensor::from_vec([k, m], random_vec(&mut rng, k * m)).unwrap();
        let b = Tensor::from_vec([k, n], random_vec(&mut rng, k * n)).unwrap();
        let a = Tensor::from_vec([m, k], random_vec(&mut rng, m * k)).unwrap();
        let b_t = Tensor::from_vec([n, k], random_vec(&mut rng, n * k)).unwrap();
        let tn_serial = matmul_tn_with(Parallelism::serial(), &a_t, &b).unwrap();
        let nt_serial = matmul_nt_with(Parallelism::serial(), &a, &b_t).unwrap();
        for threads in THREADS {
            let tn = matmul_tn_with(Parallelism::new(threads), &a_t, &b).unwrap();
            prop_assert_eq!(tn_serial.data(), tn.data(), "tn threads={}", threads);
            let nt = matmul_nt_with(Parallelism::new(threads), &a, &b_t).unwrap();
            prop_assert_eq!(nt_serial.data(), nt.data(), "nt threads={}", threads);
        }
    }

    /// The blocked transpose is an exact permutation: a round trip restores
    /// the input bitwise for any shape, including ones far from the 32×32
    /// block size.
    #[test]
    fn blocked_transpose_round_trips(
        m in 1usize..80,
        n in 1usize..80,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let src = random_vec(&mut rng, m * n);
        let mut t = vec![0.0f32; n * m];
        transpose_into(&src, &mut t, m, n);
        let mut back = vec![0.0f32; m * n];
        transpose_into(&t, &mut back, n, m);
        prop_assert_eq!(&src, &back, "m={} n={}", m, n);
    }

    /// Convolution and pooling fan out over batch items/planes internally
    /// (driven by the process-wide budget); forcing the whole call serial
    /// via `with_serial` must not change a single bit.
    #[test]
    fn conv_and_pool_match_their_serial_execution(
        batch in 1usize..4,
        channels in 1usize..4,
        hw in 6usize..14,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::from_vec(
            [batch, channels, hw, hw],
            random_vec(&mut rng, batch * channels * hw * hw),
        )
        .unwrap();
        let weight = Tensor::from_vec(
            [3, channels, 3, 3],
            random_vec(&mut rng, 3 * channels * 9),
        )
        .unwrap();
        let geom = ConvGeometry::square(3, 1, 1).unwrap();
        let conv_par = conv2d(&x, &weight, None, geom).unwrap();
        let conv_ser = par::with_serial(|| conv2d(&x, &weight, None, geom)).unwrap();
        prop_assert_eq!(conv_par.data(), conv_ser.data());
        let avg_par = avg_pool2d(&x, 2, 2).unwrap();
        let avg_ser = par::with_serial(|| avg_pool2d(&x, 2, 2)).unwrap();
        prop_assert_eq!(avg_par.data(), avg_ser.data());
        let max_par = max_pool2d(&x, 2, 2).unwrap();
        let max_ser = par::with_serial(|| max_pool2d(&x, 2, 2)).unwrap();
        prop_assert_eq!(max_par.output.data(), max_ser.output.data());
        prop_assert_eq!(max_par.argmax, max_ser.argmax);
    }
}
