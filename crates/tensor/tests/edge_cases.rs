//! Edge-case integration tests for the tensor kernels: non-square
//! geometries, extreme values, and empty inputs.

use tcl_tensor::ops::{self, ConvGeometry};
use tcl_tensor::{SeededRng, Tensor};

#[test]
fn non_square_kernels_match_naive() {
    let mut rng = SeededRng::new(0);
    let x = rng.uniform_tensor([1, 2, 6, 9], -1.0, 1.0);
    let w = rng.uniform_tensor([3, 2, 1, 5], -1.0, 1.0);
    let geom = ConvGeometry::new(1, 5, 1, 2).unwrap();
    let fast = ops::conv2d(&x, &w, None, geom).unwrap();
    let slow = ops::conv2d_naive(&x, &w, None, geom).unwrap();
    assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    // Symmetric padding of 2 also pads the height, so H grows: 6+2·2-1+1.
    assert_eq!(fast.dims(), &[1, 3, 10, 9]);
}

#[test]
fn one_by_one_input_with_three_by_three_padded_kernel() {
    let mut rng = SeededRng::new(1);
    let x = rng.uniform_tensor([1, 1, 1, 1], -1.0, 1.0);
    let w = rng.uniform_tensor([1, 1, 3, 3], -1.0, 1.0);
    let geom = ConvGeometry::square(3, 1, 1).unwrap();
    let y = ops::conv2d(&x, &w, None, geom).unwrap();
    // Only the kernel center overlaps the single pixel.
    assert!((y.at(0) - x.at(0) * w.at4(0, 0, 1, 1)).abs() < 1e-6);
}

#[test]
fn transpose_rectangular() {
    let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
    let tt = ops::transpose(&t).unwrap();
    assert_eq!(tt.dims(), &[3, 2]);
    assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
}

#[test]
fn logsumexp_is_stable_for_huge_and_tiny_logits() {
    let t = Tensor::from_vec([2, 2], vec![1e4, 1e4 - 1.0, -1e4, -1e4 - 1.0]).unwrap();
    let lse = ops::logsumexp_rows(&t).unwrap();
    assert!(lse.iter().all(|v| v.is_finite()));
    assert!((lse[0] - (1e4 + (1.0 + (-1.0f32).exp()).ln())).abs() < 1.0);
}

#[test]
fn softmax_of_identical_logits_is_uniform() {
    let t = Tensor::full([1, 5], 3.3);
    let s = ops::softmax_rows(&t).unwrap();
    for &v in s.data() {
        assert!((v - 0.2).abs() < 1e-6);
    }
}

#[test]
fn stride_larger_than_kernel_skips_input() {
    let x = Tensor::from_fn([1, 1, 5, 5], |i| i as f32);
    let w = Tensor::ones([1, 1, 1, 1]);
    let geom = ConvGeometry::square(1, 3, 0).unwrap();
    let y = ops::conv2d(&x, &w, None, geom).unwrap();
    assert_eq!(y.dims(), &[1, 1, 2, 2]);
    assert_eq!(y.data(), &[0.0, 3.0, 15.0, 18.0]);
}

#[test]
fn batch_zero_convolution_yields_empty_output() {
    let x = Tensor::zeros([0, 1, 4, 4]);
    let w = Tensor::ones([1, 1, 3, 3]);
    let geom = ConvGeometry::square(3, 1, 1).unwrap();
    let y = ops::conv2d(&x, &w, None, geom).unwrap();
    assert_eq!(y.dims(), &[0, 1, 4, 4]);
    assert!(y.is_empty());
}

#[test]
fn accuracy_on_empty_label_set_is_zero() {
    let logits = Tensor::zeros([0, 3]);
    assert_eq!(ops::accuracy(&logits, &[]).unwrap(), 0.0);
}

#[test]
fn pooling_entire_image_equals_global_mean() {
    let mut rng = SeededRng::new(2);
    let x = rng.uniform_tensor([2, 3, 4, 4], -1.0, 1.0);
    let pooled = ops::avg_pool2d(&x, 4, 4).unwrap();
    let global = ops::global_avg_pool(&x).unwrap();
    assert!(pooled.max_abs_diff(&global).unwrap() < 1e-6);
}

#[test]
fn conv_backward_on_stride_two_conserves_bias_gradient() {
    let mut rng = SeededRng::new(3);
    let x = rng.uniform_tensor([2, 1, 6, 6], -1.0, 1.0);
    let w = rng.uniform_tensor([2, 1, 3, 3], -1.0, 1.0);
    let geom = ConvGeometry::square(3, 2, 1).unwrap();
    let y = ops::conv2d(&x, &w, None, geom).unwrap();
    let gout = Tensor::ones(y.shape().clone());
    let grads = ops::conv2d_backward(&x, &w, &gout, geom).unwrap();
    // Bias gradient = number of output positions per channel × batch.
    let per_channel = (y.len() / 2) as f32;
    assert!((grads.grad_bias.at(0) - per_channel).abs() < 1e-4);
    assert!((grads.grad_bias.at(1) - per_channel).abs() < 1e-4);
}
