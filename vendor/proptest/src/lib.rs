//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements the pieces the repo's property tests actually use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) expanding each `#[test] fn name(arg in strategy, ..) { .. }`
//!   item into a `#[test]` that runs `config.cases` random cases;
//! * [`Strategy`] with implementations for numeric ranges and tuples, plus
//!   [`Strategy::prop_map`] and [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name) and failing inputs are *not*
//! shrunk — the panic message reports the case number and the failed
//! assertion instead. Regression files are ignored.

#![forbid(unsafe_code)]

use std::fmt;

/// Number of cases to run per property, plus rejection limits.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases required per property.
    pub cases: u32,
    /// Maximum rejected cases (via [`prop_assume!`]) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; draw a fresh one.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Deterministic generator driving case production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary label (the test name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label gives a stable per-test seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u8, i32, i64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// `Just`-style constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of upstream's `proptest::prop` re-exports.
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}: {}",
                file!(),
                line!(),
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {} == {}: {}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {} != {}\n  both: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects the current case, causing the harness to draw a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Expands property definitions into `#[test]` functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $(let $arg = $arg;)+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({})",
                                    stringify!($name),
                                    rejected
                                );
                            }
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed on case {} of {}:\n{}",
                                stringify!($name),
                                accepted + 1,
                                config.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(0.5f32..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (1usize..4, 0.0f32..1.0).prop_map(|(n, x)| vec![x; n]);
        let mut rng = crate::TestRng::deterministic("tuples");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = prop::collection::vec(0.0f32..1.0, 2..5);
        let mut rng = crate::TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_runs_and_assumes(x in 0usize..100, y in 0usize..100) {
            prop_assume!(x != y);
            prop_assert_ne!(x, y);
            prop_assert!(x < 100 && y < 100, "x={} y={}", x, y);
            prop_assert_eq!(x + y, y + x);
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
