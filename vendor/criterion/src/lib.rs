//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements a small wall-clock benchmark harness behind criterion's API
//! surface: [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark is warmed up briefly, then measured in timed batches
//! until a fixed per-bench time budget is spent (or `sample_size` samples
//! are collected, whichever comes first). The median ns/iter is printed
//! per bench, and if the `CRITERION_JSON` environment variable names a
//! file path, a JSON summary of every bench (median / mean / min / max
//! ns per iteration, sample count) is written there on exit, along with
//! any environment annotations recorded via [`Criterion::meta`] (a stub
//! extension: real criterion has no equivalent, and callers behind the
//! real crate would simply not call it). There is no statistical
//! regression analysis, HTML report, or gnuplot output.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` should amortize setup cost. The stand-in harness
/// times every batch individually, so the variants only influence batch
/// sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch.
    SmallInput,
    /// Large inputs: few iterations per batch.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// One bench's collected statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark id as passed to `bench_function`.
    pub name: String,
    /// Median ns/iter across samples.
    pub median_ns: f64,
    /// Mean ns/iter across samples.
    pub mean_ns: f64,
    /// Fastest sample's ns/iter.
    pub min_ns: f64,
    /// Slowest sample's ns/iter.
    pub max_ns: f64,
    /// Number of samples collected.
    pub samples: usize,
}

/// Measurement context handed to the closure given to
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<f64>,
    target_samples: usize,
    budget: Duration,
}

impl Bencher {
    fn new(target_samples: usize, budget: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            target_samples,
            budget,
        }
    }

    /// Benchmarks `routine` by running it repeatedly and timing batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + per-iteration cost estimate.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();
        let mut per_iter = first.max(Duration::from_nanos(1));
        let warm_deadline = Instant::now() + self.budget / 10;
        while Instant::now() < warm_deadline {
            let t = Instant::now();
            black_box(routine());
            per_iter = (per_iter + t.elapsed().max(Duration::from_nanos(1))) / 2;
        }

        // Aim for each sample (batch) to take ~budget/target_samples.
        let per_sample = self.budget / self.target_samples as u32;
        let iters_per_sample =
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as usize;

        let deadline = Instant::now() + self.budget;
        while self.samples.len() < self.target_samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
            if Instant::now() >= deadline && self.samples.len() >= 5 {
                break;
            }
        }
    }

    /// Benchmarks `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed, never the setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        while self.samples.len() < self.target_samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples
                .push(t.elapsed().max(Duration::from_nanos(1)).as_nanos() as f64);
            if Instant::now() >= deadline && self.samples.len() >= 5 {
                break;
            }
        }
    }
}

/// The benchmark runner. Collects stats for every bench and, when the
/// `CRITERION_JSON` environment variable is set, writes them out as JSON
/// when dropped.
pub struct Criterion {
    sample_size: usize,
    budget: Duration,
    results: Vec<BenchStats>,
    meta: Vec<(String, String)>,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1200);
        Criterion {
            sample_size: 20,
            budget: Duration::from_millis(budget_ms),
            results: Vec::new(),
            meta: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the target number of samples per bench.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Records a key/value environment annotation (SIMD level, thread
    /// budget, git revision, …) emitted as a `"meta"` object in the JSON
    /// summary, so recorded numbers carry the context they were measured
    /// under. Last write wins for a repeated key.
    pub fn meta(&mut self, key: &str, value: &str) -> &mut Self {
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value.to_string();
        } else {
            self.meta.push((key.to_string(), value.to_string()));
        }
        self
    }

    /// Runs one benchmark and records its statistics.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.budget);
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            eprintln!("bench {id}: no samples collected");
            return self;
        }
        s.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
        let median = if s.len() % 2 == 1 {
            s[s.len() / 2]
        } else {
            (s[s.len() / 2 - 1] + s[s.len() / 2]) / 2.0
        };
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let stats = BenchStats {
            name: id.to_string(),
            median_ns: median,
            mean_ns: mean,
            min_ns: s[0],
            max_ns: *s.last().expect("nonempty"),
            samples: s.len(),
        };
        println!(
            "{:<44} median {:>12}  (mean {}, {} samples)",
            stats.name,
            format_ns(stats.median_ns),
            format_ns(stats.mean_ns),
            stats.samples
        );
        self.results.push(stats);
        self
    }

    /// Writes collected stats as JSON to `path`.
    fn write_json(&self, path: &str) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut out = String::from("{\n");
        if !self.meta.is_empty() {
            out.push_str("  \"meta\": {");
            for (i, (k, v)) in self.meta.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "\"{}\": \"{}\"",
                    k.replace('"', "'"),
                    v.replace('"', "'")
                ));
            }
            out.push_str("},\n");
        }
        out.push_str("  \"benches\": [\n");
        for (i, s) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}{}\n",
                s.name.replace('"', "'"),
                s.median_ns,
                s.mean_ns,
                s.min_ns,
                s.max_ns,
                s.samples,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        let mut f = std::fs::File::create(path)?;
        f.write_all(out.as_bytes())
    }

    /// Flushes results (called by `criterion_main!` after all groups run).
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                match self.write_json(&path) {
                    Ok(()) => println!("wrote bench summary to {path}"),
                    Err(e) => eprintln!("failed to write {path}: {e}"),
                }
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group of benchmarks, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion {
            sample_size: 5,
            budget: Duration::from_millis(50),
            results: Vec::new(),
            meta: Vec::new(),
        };
        c.bench_function("spin", |b| b.iter(|| black_box(3u64).pow(7)));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].samples >= 5);
        assert!(c.results[0].median_ns > 0.0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion {
            sample_size: 5,
            budget: Duration::from_millis(50),
            results: Vec::new(),
            meta: Vec::new(),
        };
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1.0f32; 256],
                |v| v.iter().sum::<f32>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].min_ns > 0.0);
    }

    #[test]
    fn json_output_is_well_formed() {
        let mut c = Criterion {
            sample_size: 3,
            budget: Duration::from_millis(20),
            results: Vec::new(),
            meta: Vec::new(),
        };
        c.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        let path = std::env::temp_dir().join("criterion_stub_test.json");
        let path = path.to_string_lossy().to_string();
        c.write_json(&path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains("\"benches\""));
        assert!(text.contains("\"median_ns\""));
        // No meta() calls → no meta block at all.
        assert!(!text.contains("\"meta\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn meta_annotations_land_in_json() {
        let mut c = Criterion {
            sample_size: 3,
            budget: Duration::from_millis(20),
            results: Vec::new(),
            meta: Vec::new(),
        };
        c.meta("simd", "avx2").meta("threads", "4");
        c.meta("simd", "scalar"); // last write wins
        c.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        let path = std::env::temp_dir().join("criterion_stub_meta_test.json");
        let path = path.to_string_lossy().to_string();
        c.write_json(&path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains("\"meta\": {\"simd\": \"scalar\", \"threads\": \"4\"}"));
        let _ = std::fs::remove_file(&path);
    }
}
