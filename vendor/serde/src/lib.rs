//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and result
//! structs as forward-looking markers, but nothing actually serializes
//! through serde (model I/O is a hand-rolled binary codec in `tcl-nn`, and
//! experiment output is hand-written JSON). The build environment has no
//! network access to crates.io, so this crate provides the two derive
//! macros as no-ops: `#[derive(Serialize, Deserialize)]` compiles and
//! expands to nothing.
//!
//! If real serialization is ever needed, replace this stub with the real
//! `serde` dependency in the workspace manifest; no call sites change.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
