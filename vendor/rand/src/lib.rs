//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no network access to crates.io, so the few
//! pieces of the `rand` API that `tcl-tensor`'s [`SeededRng`] wrapper needs
//! are implemented here directly: [`rngs::SmallRng`] (xoshiro256++ seeded by
//! SplitMix64 — the same construction the real `SmallRng` uses on 64-bit
//! targets), the [`Rng`]/[`RngCore`] traits with `gen`/`gen_range`, and
//! [`SeedableRng::seed_from_u64`].
//!
//! Streams are deterministic for a given seed, which is the only contract
//! the workspace relies on (exact values need not match upstream `rand`).
//!
//! [`SeededRng`]: https://docs.rs/tcl-tensor

#![forbid(unsafe_code)]

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an `RngCore` (stand-in for sampling with
/// the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait UniformRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u8);

impl UniformRange for core::ops::Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let u: f32 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<Sp: UniformRange>(&mut self, range: Sp) -> Sp::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words (for explicit persistence).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words previously returned by
        /// [`SmallRng::state`], continuing the stream exactly.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = SmallRng::seed_from_u64(5);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f32_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn f32_stream_covers_both_halves() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 4096;
        let low = (0..n).filter(|_| rng.gen::<f32>() < 0.5).count();
        assert!(low > n / 3 && low < 2 * n / 3, "low-half count {low}");
    }
}
